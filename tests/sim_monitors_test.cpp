// Collision-monitor tests: the closed-form closest approach, constructed
// collision/crossing scenarios, and the final-configuration verdicts.
#include "sim/monitors.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace lumen::sim {
namespace {

using geom::Vec2;

TEST(MinDistanceLinearMotion, HeadOnPassThrough) {
  // Two points swap positions along the same line: they meet at the middle.
  double t_min = 0.0;
  const double d = min_distance_linear_motion({0, 0}, {10, 0}, {10, 0}, {0, 0},
                                              0.0, 1.0, &t_min);
  EXPECT_NEAR(d, 0.0, 1e-12);
  EXPECT_NEAR(t_min, 0.5, 1e-12);
}

TEST(MinDistanceLinearMotion, ParallelMotionKeepsDistance) {
  const double d =
      min_distance_linear_motion({0, 0}, {10, 0}, {0, 3}, {10, 3}, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(d, 3.0);
}

TEST(MinDistanceLinearMotion, StationaryVsMover) {
  // Mover passes within 1 of a stationary point.
  const double d =
      min_distance_linear_motion({-5, 1}, {5, 1}, {0, 0}, {0, 0}, 0.0, 1.0);
  EXPECT_NEAR(d, 1.0, 1e-12);
}

TEST(MinDistanceLinearMotion, MinimumAtEndpoint) {
  // Receding motion: minimum at t0.
  double t_min = -1.0;
  const double d = min_distance_linear_motion({1, 0}, {10, 0}, {0, 0}, {0, 0},
                                              3.0, 4.0, &t_min);
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_DOUBLE_EQ(t_min, 3.0);
}

TEST(MinDistanceLinearMotion, AgreesWithDenseSampling) {
  util::Prng rng{23};
  for (int iter = 0; iter < 500; ++iter) {
    const Vec2 a0{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 a1{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 b0{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 b1{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const double closed = min_distance_linear_motion(a0, a1, b0, b1, 0.0, 1.0);
    double sampled = 1e300;
    for (int k = 0; k <= 1000; ++k) {
      const double s = k / 1000.0;
      sampled = std::min(sampled,
                         geom::distance(geom::lerp(a0, a1, s), geom::lerp(b0, b1, s)));
    }
    EXPECT_LE(closed, sampled + 1e-9);
    EXPECT_NEAR(closed, sampled, 1e-3);
  }
}

TEST(CheckCollisions, CleanRunOfDisjointMovers) {
  const std::vector<Vec2> initial = {{0, 0}, {100, 100}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 1.0, {0, 0}, {10, 0}},
      {1, 0.0, 1.0, {100, 100}, {90, 100}},
  };
  const auto report = check_collisions(initial, moves, 2.0);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.min_separation, 50.0);
  EXPECT_FALSE(report.first_incident.has_value());
}

TEST(CheckCollisions, DetectsMeetingAtAPoint) {
  const std::vector<Vec2> initial = {{0, 0}, {10, 0}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 1.0, {0, 0}, {5, 0}},
      {1, 0.0, 1.0, {10, 0}, {5, 0}},
  };
  const auto report = check_collisions(initial, moves, 2.0);
  EXPECT_GT(report.position_collisions, 0u);
  EXPECT_NEAR(report.min_separation, 0.0, 1e-12);
  ASSERT_TRUE(report.first_incident.has_value());
  EXPECT_EQ(report.first_incident->kind, "position");
}

TEST(CheckCollisions, DetectsCrossingPaths) {
  // Paths cross in space while both robots move concurrently, but they pass
  // the crossing point at different speeds so positions never coincide.
  const std::vector<Vec2> initial = {{0, 0}, {0, 10}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 10.0, {0, 0}, {10, 10}},
      {1, 0.0, 1.0, {0, 10}, {10, 0}},
  };
  const auto report = check_collisions(initial, moves, 12.0);
  EXPECT_GT(report.path_crossings, 0u);
  EXPECT_GT(report.min_separation, 0.0);
  EXPECT_FALSE(report.clean());
}

TEST(CheckCollisions, NonOverlappingTimesMayShareSpace) {
  // Same path traversed at disjoint times: legal.
  const std::vector<Vec2> initial = {{0, 0}, {10, 0}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 1.0, {0, 0}, {10, 5}},
      {1, 5.0, 6.0, {10, 0}, {0, 5}},
  };
  const auto report = check_collisions(initial, moves, 7.0);
  EXPECT_EQ(report.path_crossings, 0u);
  EXPECT_EQ(report.position_collisions, 0u);
}

TEST(CheckCollisions, MoverThroughStationaryRobot) {
  const std::vector<Vec2> initial = {{0, 0}, {5, 0}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 1.0, {0, 0}, {10, 0}},  // Passes exactly through (5, 0).
  };
  const auto report = check_collisions(initial, moves, 2.0);
  EXPECT_GT(report.position_collisions, 0u);
}

TEST(CheckCollisions, ToleranceFlagsGrazingContact) {
  const std::vector<Vec2> initial = {{0, 0}, {5, 0.05}};
  const std::vector<MoveSegment> moves = {
      {0, 0.0, 1.0, {0, 0}, {10, 0}},
  };
  EXPECT_TRUE(check_collisions(initial, moves, 2.0, 0.0).clean());
  EXPECT_FALSE(check_collisions(initial, moves, 2.0, 0.1).clean());
}

TEST(CheckCollisions, InitialCoincidenceIsDetectedWithoutMoves) {
  const std::vector<Vec2> initial = {{1, 1}, {1, 1}};
  const auto report = check_collisions(initial, {}, 1.0);
  EXPECT_EQ(report.min_separation, 0.0);
  EXPECT_GT(report.position_collisions, 0u);
}

TEST(VerifyCompleteVisibility, Verdicts) {
  const std::vector<Vec2> convex = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  const auto good = verify_complete_visibility(convex);
  EXPECT_TRUE(good.distinct);
  EXPECT_TRUE(good.strictly_convex);
  EXPECT_TRUE(good.mutually_visible);
  EXPECT_TRUE(good.complete());

  const std::vector<Vec2> blocked = {{0, 0}, {2, 0}, {4, 0}};
  const auto bad = verify_complete_visibility(blocked);
  EXPECT_TRUE(bad.distinct);
  EXPECT_FALSE(bad.strictly_convex);
  EXPECT_FALSE(bad.mutually_visible);
  EXPECT_FALSE(bad.complete());

  const std::vector<Vec2> dup = {{0, 0}, {0, 0}, {1, 1}};
  EXPECT_FALSE(verify_complete_visibility(dup).distinct);
}

}  // namespace
}  // namespace lumen::sim
