// Fault campaigns and degradation experiments: ScenarioSpec round-trip with
// an embedded fault plan, shard-merge invariance for fault-injected
// campaigns (outcomes and counters included), registry entries for E9-E11,
// and a tiny end-to-end E9 execution.
#include "analysis/campaign.hpp"
#include "analysis/experiments.hpp"
#include "analysis/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lumen::analysis {
namespace {

fault::FaultPlan mixed_plan() {
  fault::FaultPlan plan;
  plan.crash.count = 2;
  plan.crash.rate = 0.05;
  plan.light.probability = 0.02;
  plan.noise.sigma = 1e-4;
  return plan;
}

// ---------------------------------------------------------------------------
// ScenarioSpec embedding.

TEST(FaultScenario, SpecWithFaultPlanRoundTripsByteIdentically) {
  ScenarioSpec spec;
  spec.ns = {12};
  spec.runs = 3;
  spec.run.fault = mixed_plan();
  const std::string text = scenario_to_json(spec);
  EXPECT_NE(text.find("\"fault\""), std::string::npos);
  const auto parsed = scenario_from_json(text);
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  EXPECT_EQ(parsed.spec->run.fault, spec.run.fault);
  EXPECT_EQ(scenario_to_json(*parsed.spec), text);
}

TEST(FaultScenario, FaultFreeSpecOmitsTheFaultKey) {
  // The default plan is not serialized, keeping pre-fault spec documents
  // and their golden serializations unchanged.
  const std::string text = scenario_to_json(ScenarioSpec{});
  EXPECT_EQ(text.find("\"fault\""), std::string::npos);
}

TEST(FaultScenario, BadFaultPlanIsARunError) {
  const std::string text =
      R"({"run": {"fault": {"light": {"probability": 7.0}}}})";
  const auto parsed = scenario_from_json(text);
  EXPECT_FALSE(parsed.spec.has_value());
  EXPECT_NE(parsed.error.find("run.fault"), std::string::npos) << parsed.error;
}

// ---------------------------------------------------------------------------
// Sharded fault campaigns.

CampaignSpec small_fault_campaign() {
  CampaignSpec spec;
  spec.n = 12;
  spec.runs = 9;
  spec.seed_base = 21;
  spec.run.max_cycles_per_robot = 128;
  spec.run.fault = mixed_plan();
  spec.audit_collisions = true;
  return spec;
}

void expect_same_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_EQ(a.visibility_ok, b.visibility_ok);
  EXPECT_EQ(a.collision_free, b.collision_free);
  EXPECT_EQ(a.min_observed_separation, b.min_observed_separation);
  EXPECT_EQ(a.path_crossings, b.path_crossings);
  EXPECT_EQ(a.position_collisions, b.position_collisions);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.collision_channel, b.collision_channel);
}

TEST(FaultCampaign, ShardsMergeToTheUnshardedCampaign) {
  const CampaignSpec whole = small_fault_campaign();
  const CampaignResult unsharded = run_campaign(whole);
  ASSERT_EQ(unsharded.runs.size(), whole.runs);

  std::vector<RunMetrics> merged;
  constexpr std::size_t kShards = 3;
  for (std::size_t s = 0; s < kShards; ++s) {
    CampaignSpec shard = whole;
    shard.shard_index = s;
    shard.shard_count = kShards;
    const CampaignResult part = run_campaign(shard);
    merged.insert(merged.end(), part.runs.begin(), part.runs.end());
  }
  ASSERT_EQ(merged.size(), unsharded.runs.size());
  std::sort(merged.begin(), merged.end(),
            [](const RunMetrics& a, const RunMetrics& b) { return a.seed < b.seed; });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_same_metrics(merged[i], unsharded.runs[i]);
  }
}

TEST(FaultCampaign, AggregatesCountOutcomesAndFaults) {
  const CampaignResult r = run_campaign(small_fault_campaign());
  const std::size_t classified = r.outcome_count(sim::RunOutcome::kConverged) +
                                 r.outcome_count(sim::RunOutcome::kStalled) +
                                 r.outcome_count(sim::RunOutcome::kCollision) +
                                 r.outcome_count(sim::RunOutcome::kBudgetExhausted);
  EXPECT_EQ(classified, r.runs.size());
  // The rate-scheduled crash channel with a generous budget should have
  // fired at least once across 9 runs; view-channel counters accumulate on
  // every Look, so they are certainly nonzero.
  const fault::FaultCounters totals = r.fault_totals();
  EXPECT_GT(totals.corrupted_reads + totals.perturbed_observations, 0u);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(FaultExperiments, RegisteredAndFindable) {
  const auto& registry = ExperimentRegistry::instance();
  const struct {
    const char* name;
    const char* id;
  } entries[] = {{"crash-tolerance", "E9"},
                 {"light-corruption", "E10"},
                 {"sensor-noise", "E11"}};
  for (const auto& entry : entries) {
    const Experiment* by_name = registry.find(entry.name);
    const Experiment* by_id = registry.find(entry.id);
    ASSERT_NE(by_name, nullptr) << entry.name;
    EXPECT_EQ(by_name, by_id) << entry.name;
    EXPECT_FALSE(by_name->description.empty());
    EXPECT_TRUE(by_name->run != nullptr);
  }
}

TEST(FaultExperiments, TinyCrashToleranceRuns) {
  const Experiment* e = ExperimentRegistry::instance().find("E9");
  ASSERT_NE(e, nullptr);
  ScenarioSpec spec = e->defaults;
  spec.ns = {10};
  spec.runs = 2;
  spec.run.max_cycles_per_robot = 64;
  const ExperimentResult result = e->run(spec, ExperimentContext{});
  EXPECT_EQ(result.experiment, "crash-tolerance");
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.size(), result.columns.size());
  }
  // f in {0, 1, 2, 4, 8} at N=10: the f >= n guard keeps all five rows.
  EXPECT_EQ(result.rows.size(), 5u);
  ASSERT_FALSE(result.checks.empty());
  EXPECT_TRUE(result.checks.front().passed);
}

}  // namespace
}  // namespace lumen::analysis
