// Obstructed-visibility kernel tests: the fast angular-sweep implementation
// is validated against the brute-force oracle on random and adversarially
// collinear configurations.
#include "geom/visibility.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/hull.hpp"
#include "util/prng.hpp"

namespace lumen::geom {
namespace {

TEST(Visibility, TriangleSeesEveryone) {
  const std::vector<Vec2> pts = {{0, 0}, {4, 0}, {2, 3}};
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Visibility, MiddleRobotBlocksTheLine) {
  const std::vector<Vec2> pts = {{0, 0}, {5, 0}, {10, 0}};
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.sees(0, 1));
  EXPECT_TRUE(g.sees(1, 2));
  EXPECT_FALSE(g.sees(0, 2));
  EXPECT_FALSE(g.complete());
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{{0, 0}, {5, 0}}));
  EXPECT_FALSE(complete_visibility(pts));
}

TEST(Visibility, LongLineSeesOnlyNeighbors) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const auto g = compute_visibility(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t expected = (i == 0 || i == 9) ? 1 : 2;
    EXPECT_EQ(g.degree(i), expected) << i;
  }
}

TEST(Visibility, NearestOnRayWinsBothSides) {
  // Four robots on a vertical ray from the observer plus the observer: the
  // observer sees only the nearest above and the nearest below.
  const std::vector<Vec2> pts = {{0, 0}, {0, 2}, {0, 5}, {0, -1}, {0, -7}};
  const auto vis = visible_from(pts, 0);
  EXPECT_EQ(vis.size(), 2u);
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.sees(0, 1));
  EXPECT_FALSE(g.sees(0, 2));
  EXPECT_TRUE(g.sees(0, 3));
  EXPECT_FALSE(g.sees(0, 4));
}

TEST(Visibility, SymmetryOfFastKernel) {
  util::Prng rng{21};
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  const auto g = compute_visibility(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(g.sees(i, j), g.sees(j, i));
    }
  }
}

TEST(Visibility, FastMatchesNaiveOnRandomConfigs) {
  util::Prng rng{33};
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 2 + rng.next_below(50);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20)});
    }
    const auto fast = compute_visibility(pts);
    const auto slow = compute_visibility_naive(pts);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(fast.sees(i, j), slow.sees(i, j)) << "iter " << iter;
      }
    }
  }
}

TEST(Visibility, FastMatchesNaiveOnCollinearClusters) {
  // Adversarial: many exactly-collinear runs through shared points.
  std::vector<Vec2> pts;
  for (int i = -3; i <= 3; ++i) {
    pts.push_back({static_cast<double>(i), 0.0});                   // Horizontal.
    pts.push_back({0.0, static_cast<double>(i)});                   // Vertical.
    pts.push_back({static_cast<double>(i), static_cast<double>(i)});  // Diagonal.
  }
  const auto fast = compute_visibility(pts);
  const auto slow = compute_visibility_naive(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      ASSERT_EQ(fast.sees(i, j), slow.sees(i, j)) << i << "," << j;
    }
  }
}

TEST(Visibility, CoincidentRobotsNeverSeeEachOther) {
  const std::vector<Vec2> pts = {{1, 1}, {1, 1}, {5, 5}};
  const auto g = compute_visibility(pts);
  EXPECT_FALSE(g.sees(0, 1));
  EXPECT_FALSE(complete_visibility(pts));
}

TEST(Visibility, StrictConvexPositionImpliesComplete) {
  util::Prng rng{44};
  for (int iter = 0; iter < 20; ++iter) {
    // Points on a circle at sorted distinct angles: strictly convex.
    std::vector<double> angles;
    const int k = 3 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < k; ++i) angles.push_back(rng.uniform(0, 6.28318));
    std::sort(angles.begin(), angles.end());
    angles.erase(std::unique(angles.begin(), angles.end()), angles.end());
    std::vector<Vec2> pts;
    for (const double a : angles) {
      pts.push_back({50 * std::cos(a), 50 * std::sin(a)});
    }
    if (!points_in_strictly_convex_position(pts)) continue;  // Rounding fluke.
    EXPECT_TRUE(complete_visibility(pts));
  }
}

TEST(Visibility, EdgeCountAndDegreeBookkeeping) {
  const std::vector<Vec2> pts = {{0, 0}, {5, 0}, {10, 0}};
  const auto g = compute_visibility(pts);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.size(), 3u);
  const VisibilityGraph empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.complete());  // Vacuously.
}

TEST(Visibility, SingleAndEmpty) {
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{}));
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{{1, 2}}));
}

}  // namespace
}  // namespace lumen::geom
