// Obstructed-visibility kernel tests: the fast angular-sweep implementation
// is validated against the brute-force oracle on random and adversarially
// collinear configurations.
#include "geom/visibility.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/hull.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace lumen::geom {
namespace {

TEST(Visibility, TriangleSeesEveryone) {
  const std::vector<Vec2> pts = {{0, 0}, {4, 0}, {2, 3}};
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Visibility, MiddleRobotBlocksTheLine) {
  const std::vector<Vec2> pts = {{0, 0}, {5, 0}, {10, 0}};
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.sees(0, 1));
  EXPECT_TRUE(g.sees(1, 2));
  EXPECT_FALSE(g.sees(0, 2));
  EXPECT_FALSE(g.complete());
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{{0, 0}, {5, 0}}));
  EXPECT_FALSE(complete_visibility(pts));
}

TEST(Visibility, LongLineSeesOnlyNeighbors) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const auto g = compute_visibility(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t expected = (i == 0 || i == 9) ? 1 : 2;
    EXPECT_EQ(g.degree(i), expected) << i;
  }
}

TEST(Visibility, NearestOnRayWinsBothSides) {
  // Four robots on a vertical ray from the observer plus the observer: the
  // observer sees only the nearest above and the nearest below.
  const std::vector<Vec2> pts = {{0, 0}, {0, 2}, {0, 5}, {0, -1}, {0, -7}};
  const auto vis = visible_from(pts, 0);
  EXPECT_EQ(vis.size(), 2u);
  const auto g = compute_visibility(pts);
  EXPECT_TRUE(g.sees(0, 1));
  EXPECT_FALSE(g.sees(0, 2));
  EXPECT_TRUE(g.sees(0, 3));
  EXPECT_FALSE(g.sees(0, 4));
}

TEST(Visibility, SymmetryOfFastKernel) {
  util::Prng rng{21};
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  const auto g = compute_visibility(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(g.sees(i, j), g.sees(j, i));
    }
  }
}

TEST(Visibility, FastMatchesNaiveOnRandomConfigs) {
  util::Prng rng{33};
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 2 + rng.next_below(50);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20)});
    }
    const auto fast = compute_visibility(pts);
    const auto slow = compute_visibility_naive(pts);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(fast.sees(i, j), slow.sees(i, j)) << "iter " << iter;
      }
    }
  }
}

TEST(Visibility, FastMatchesNaiveOnCollinearClusters) {
  // Adversarial: many exactly-collinear runs through shared points.
  std::vector<Vec2> pts;
  for (int i = -3; i <= 3; ++i) {
    pts.push_back({static_cast<double>(i), 0.0});                   // Horizontal.
    pts.push_back({0.0, static_cast<double>(i)});                   // Vertical.
    pts.push_back({static_cast<double>(i), static_cast<double>(i)});  // Diagonal.
  }
  const auto fast = compute_visibility(pts);
  const auto slow = compute_visibility_naive(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      ASSERT_EQ(fast.sees(i, j), slow.sees(i, j)) << i << "," << j;
    }
  }
}

TEST(Visibility, FastMatchesNaiveOnRandomGridConfigs) {
  // Grid-snapped random points: dense exact collinearity, shared rays and
  // COINCIDENT robots (duplicates are likely on a 7x7 grid) — the regime
  // where the sweep's equal-direction runs have length > 1 and the
  // per-observer relation must still equal the naive blocking relation.
  util::Prng rng{55};
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 2 + rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({static_cast<double>(rng.next_below(7)) - 3.0,
                     static_cast<double>(rng.next_below(7)) - 3.0});
    }
    const auto fast = compute_visibility(pts);
    const auto slow = compute_visibility_naive(pts);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(fast.sees(i, j), slow.sees(i, j))
            << "iter " << iter << " pair " << i << "," << j;
      }
    }
  }
}

TEST(Visibility, PooledComputeMatchesSerialBitForBit) {
  // The parallel observer sweep engages at >= 32 points; its row-only fill
  // must reproduce the serial graph exactly for every pool size, including
  // on grid configs with coincident points and shared rays.
  util::Prng rng{66};
  for (const bool grid : {false, true}) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 80; ++i) {
      if (grid) {
        pts.push_back({static_cast<double>(rng.next_below(9)),
                       static_cast<double>(rng.next_below(9))});
      } else {
        pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20)});
      }
    }
    const auto serial = compute_visibility(pts);
    for (const std::size_t workers : {1u, 2u, 4u}) {
      util::ThreadPool pool{workers};
      const auto pooled = compute_visibility(pts, &pool);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        for (std::size_t j = 0; j < pts.size(); ++j) {
          ASSERT_EQ(pooled.sees(i, j), serial.sees(i, j))
              << "grid=" << grid << " workers=" << workers << " pair " << i
              << "," << j;
        }
      }
      EXPECT_EQ(complete_visibility(pts, &pool), serial.complete());
    }
  }
}

TEST(Visibility, BlockBookkeepingAcrossWordBoundaries) {
  // The popcount representation packs rows into 64-bit words; sizes around
  // the word boundary exercise the partial-word masks in edge_count,
  // degree and complete.
  for (const std::size_t n : {1u, 2u, 63u, 64u, 65u, 128u, 130u}) {
    VisibilityGraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) g.set(i, j);
    }
    EXPECT_EQ(g.edge_count(), n * (n - 1) / 2) << n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(g.degree(i), n - 1) << n;
    EXPECT_TRUE(g.complete()) << n;
  }
  // Dropping a single edge — straddling a word boundary — must be seen by
  // all three accessors.
  VisibilityGraph g(65);
  for (std::size_t i = 0; i < 65; ++i) {
    for (std::size_t j = i + 1; j < 65; ++j) {
      if (i == 2 && j == 64) continue;  // Bit 64 lives in row 2's second word.
      g.set(i, j);
    }
  }
  EXPECT_FALSE(g.sees(2, 64));
  EXPECT_FALSE(g.sees(64, 2));
  EXPECT_FALSE(g.complete());
  EXPECT_EQ(g.edge_count(), 65u * 64u / 2 - 1);
  EXPECT_EQ(g.degree(2), 63u);
  EXPECT_EQ(g.degree(64), 63u);
}

TEST(Visibility, CoincidentClusterMatchesNaive) {
  // Three coincident robots plus outside observers: naive semantics say the
  // outsiders see ALL of them (a blocker must lie STRICTLY between), while
  // the coincident robots never see each other.
  const std::vector<Vec2> pts = {{-1, 0}, {0, 0}, {0, 0}, {0, 0}, {2, 0}};
  const auto fast = compute_visibility(pts);
  const auto slow = compute_visibility_naive(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      ASSERT_EQ(fast.sees(i, j), slow.sees(i, j)) << i << "," << j;
    }
  }
  EXPECT_TRUE(fast.sees(0, 1));
  EXPECT_TRUE(fast.sees(0, 2));
  EXPECT_TRUE(fast.sees(0, 3));
  EXPECT_FALSE(fast.sees(1, 2));   // Coincident pair.
  EXPECT_FALSE(fast.sees(0, 4));   // Blocked by the cluster.
}

TEST(Visibility, CoincidentRobotsNeverSeeEachOther) {
  const std::vector<Vec2> pts = {{1, 1}, {1, 1}, {5, 5}};
  const auto g = compute_visibility(pts);
  EXPECT_FALSE(g.sees(0, 1));
  EXPECT_FALSE(complete_visibility(pts));
}

TEST(Visibility, StrictConvexPositionImpliesComplete) {
  util::Prng rng{44};
  for (int iter = 0; iter < 20; ++iter) {
    // Points on a circle at sorted distinct angles: strictly convex.
    std::vector<double> angles;
    const int k = 3 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < k; ++i) angles.push_back(rng.uniform(0, 6.28318));
    std::sort(angles.begin(), angles.end());
    angles.erase(std::unique(angles.begin(), angles.end()), angles.end());
    std::vector<Vec2> pts;
    for (const double a : angles) {
      pts.push_back({50 * std::cos(a), 50 * std::sin(a)});
    }
    if (!points_in_strictly_convex_position(pts)) continue;  // Rounding fluke.
    EXPECT_TRUE(complete_visibility(pts));
  }
}

TEST(Visibility, EdgeCountAndDegreeBookkeeping) {
  const std::vector<Vec2> pts = {{0, 0}, {5, 0}, {10, 0}};
  const auto g = compute_visibility(pts);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.size(), 3u);
  const VisibilityGraph empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.complete());  // Vacuously.
}

TEST(Visibility, SingleAndEmpty) {
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{}));
  EXPECT_TRUE(complete_visibility(std::vector<Vec2>{{1, 2}}));
}

}  // namespace
}  // namespace lumen::geom
