// RunObserver contract tests: hook ordering, recorder parity with the
// RunResult fields they replace, streaming-vs-post-hoc collision audit
// equivalence, streaming epoch detection, and quiescence verdicts across
// schedulers.
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sched/epoch.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"
#include "sim/streaming_collision.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace lumen::sim {
namespace {

using geom::Vec2;
using model::Light;

RunConfig scheduler_config(SchedulerKind scheduler, std::uint64_t seed) {
  RunConfig config;
  config.scheduler = scheduler;
  config.seed = seed;
  return config;
}

std::vector<Vec2> disk(std::size_t n, std::uint64_t seed) {
  return gen::generate(gen::ConfigFamily::kUniformDisk, n, seed);
}

// --- Hook ordering ---------------------------------------------------------

struct LoggedEvent {
  enum Kind { kBegin, kLook, kCommit, kMoveDone, kEpoch, kRound, kEnd } kind;
  double time = 0.0;
  std::size_t robot = 0;
};

class RecordingObserver final : public RunObserver {
 public:
  void on_run_begin(const WorldView& world) override {
    events.push_back({LoggedEvent::kBegin, world.time, 0});
  }
  void on_look(std::size_t robot, double time, const WorldView&) override {
    events.push_back({LoggedEvent::kLook, time, robot});
  }
  void on_commit(const CommitEvent& event, const WorldView&) override {
    events.push_back({LoggedEvent::kCommit, event.time, event.robot});
  }
  void on_move_complete(const MoveSegment& move, const WorldView& world) override {
    // The contract: the world already holds the landed position.
    EXPECT_EQ(world.position(move.robot).x, move.to.x);
    EXPECT_EQ(world.position(move.robot).y, move.to.y);
    EXPECT_FALSE(world.is_moving(move.robot));
    events.push_back({LoggedEvent::kMoveDone, move.t1, move.robot});
  }
  void on_epoch(std::size_t index, double end_time, const WorldView&) override {
    EXPECT_EQ(index, epochs_seen);
    ++epochs_seen;
    events.push_back({LoggedEvent::kEpoch, end_time, index});
  }
  void on_round(std::uint64_t round, double time, const WorldView&) override {
    events.push_back({LoggedEvent::kRound, time, round});
  }
  void on_run_end(const WorldView& world) override {
    events.push_back({LoggedEvent::kEnd, world.time, 0});
  }

  std::vector<LoggedEvent> events;
  std::size_t epochs_seen = 0;
};

TEST(ObserverHooks, AsyncDeliversTimeOrderedEventsBracketedByRunMarkers) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = disk(12, 21);
  RecordingObserver rec;
  RunObserver* obs[] = {&rec};
  const RunResult run =
      run_simulation(*algo, initial, scheduler_config(SchedulerKind::kAsync, 21), obs);
  ASSERT_TRUE(run.converged);
  ASSERT_GE(rec.events.size(), 4u);
  EXPECT_EQ(rec.events.front().kind, LoggedEvent::kBegin);
  EXPECT_EQ(rec.events.back().kind, LoggedEvent::kEnd);
  double last = 0.0;
  std::size_t completions = 0;
  for (const LoggedEvent& e : rec.events) {
    EXPECT_GE(e.time, last) << "hooks must fire in simulated-time order";
    last = e.time;
    if (e.kind == LoggedEvent::kMoveDone) ++completions;
    EXPECT_NE(e.kind, LoggedEvent::kRound) << "ASYNC has no rounds";
  }
  EXPECT_EQ(completions, run.total_moves);
  EXPECT_GT(rec.epochs_seen, 0u);
}

TEST(ObserverHooks, SyncDeliversAllCommitsBeforeAnyCompletionWithinARound) {
  const auto algo = core::make_algorithm("ssync-parallel");
  const auto initial = disk(14, 5);
  RecordingObserver rec;
  RunObserver* obs[] = {&rec};
  const RunResult run = run_simulation(
      *algo, initial, scheduler_config(SchedulerKind::kSsync, 5), obs);
  ASSERT_TRUE(run.converged);
  // Between round markers, no commit may follow a move completion.
  bool saw_completion = false;
  std::uint64_t rounds_seen = 0;
  for (const LoggedEvent& e : rec.events) {
    switch (e.kind) {
      case LoggedEvent::kRound:
        EXPECT_EQ(e.robot, rounds_seen) << "rounds must arrive in order";
        ++rounds_seen;
        saw_completion = false;
        break;
      case LoggedEvent::kMoveDone: saw_completion = true; break;
      case LoggedEvent::kCommit:
        EXPECT_FALSE(saw_completion)
            << "a round's commits must precede its completions";
        break;
      default: break;
    }
  }
  EXPECT_EQ(rounds_seen, run.rounds);
}

// --- Recorder parity -------------------------------------------------------

TEST(ObserverRecorders, ExternalMoveLogMatchesRunResultMoves) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = disk(16, 7);
  MoveLogRecorder recorder;
  RunObserver* obs[] = {&recorder};
  const RunResult run = run_simulation(
      *algo, initial, scheduler_config(SchedulerKind::kAsync, 7), obs);
  const auto& mine = recorder.moves();
  ASSERT_EQ(mine.size(), run.moves.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].robot, run.moves[i].robot);
    EXPECT_EQ(mine[i].t0, run.moves[i].t0);
    EXPECT_EQ(mine[i].t1, run.moves[i].t1);
    EXPECT_EQ(mine[i].from.x, run.moves[i].from.x);
    EXPECT_EQ(mine[i].to.x, run.moves[i].to.x);
  }
}

TEST(ObserverRecorders, ExternalHullRecorderMatchesRunResultHistory) {
  for (const SchedulerKind scheduler :
       {SchedulerKind::kAsync, SchedulerKind::kSsync, SchedulerKind::kFsync}) {
    const auto algo = core::make_algorithm(
        scheduler == SchedulerKind::kAsync ? "async-log" : "ssync-parallel");
    const auto initial = disk(18, 9);
    RunConfig config = scheduler_config(scheduler, 9);
    config.record_hull_history = true;
    HullHistoryRecorder recorder(scheduler != SchedulerKind::kAsync);
    RunObserver* obs[] = {&recorder};
    const RunResult run = run_simulation(*algo, initial, config, obs);
    const auto& mine = recorder.samples();
    ASSERT_EQ(mine.size(), run.hull_history.size()) << to_string(scheduler);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i].time, run.hull_history[i].time);
      EXPECT_EQ(mine[i].corners, run.hull_history[i].corners);
      EXPECT_EQ(mine[i].non_corners, run.hull_history[i].non_corners);
    }
  }
}

TEST(ObserverRecorders, RecordMovesOffDropsTheLogButKeepsTotals) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = disk(16, 3);
  const RunConfig with = scheduler_config(SchedulerKind::kAsync, 3);
  RunConfig without = with;
  without.record_moves = false;
  const RunResult full = run_simulation(*algo, initial, with);
  const RunResult lean = run_simulation(*algo, initial, without);
  ASSERT_FALSE(full.moves.empty());
  EXPECT_TRUE(lean.moves.empty());
  EXPECT_EQ(lean.total_moves, full.total_moves);
  EXPECT_EQ(lean.total_distance, full.total_distance);
  EXPECT_EQ(lean.converged, full.converged);
  EXPECT_EQ(lean.final_time, full.final_time);
  EXPECT_EQ(lean.epochs, full.epochs);
  EXPECT_EQ(lean.total_cycles, full.total_cycles);
  ASSERT_EQ(lean.final_positions.size(), full.final_positions.size());
  for (std::size_t i = 0; i < lean.final_positions.size(); ++i) {
    EXPECT_EQ(lean.final_positions[i].x, full.final_positions[i].x);
    EXPECT_EQ(lean.final_positions[i].y, full.final_positions[i].y);
  }
}

// --- Streaming collision audit --------------------------------------------

TEST(StreamingCollision, MatchesPostHocAuditOnConvergedRuns) {
  struct Case {
    const char* algorithm;
    SchedulerKind scheduler;
    std::size_t n;
    std::uint64_t seed;
    bool rigid;
  };
  const Case cases[] = {
      {"async-log", SchedulerKind::kAsync, 20, 4, true},
      {"async-log", SchedulerKind::kAsync, 16, 12, false},
      {"seq-baseline", SchedulerKind::kAsync, 10, 2, true},
      {"ssync-parallel", SchedulerKind::kSsync, 16, 6, true},
      {"ssync-parallel", SchedulerKind::kFsync, 16, 6, true},
  };
  for (const Case& c : cases) {
    for (const double tolerance : {0.0, 1e-3}) {
      const auto algo = core::make_algorithm(c.algorithm);
      const auto initial = disk(c.n, c.seed);
      RunConfig config = scheduler_config(c.scheduler, c.seed);
      config.rigid_moves = c.rigid;
      StreamingCollisionMonitor monitor(tolerance);
      RunObserver* obs[] = {&monitor};
      const RunResult run = run_simulation(*algo, initial, config, obs);
      ASSERT_TRUE(run.converged) << c.algorithm << " seed " << c.seed;
      const CollisionReport post = check_collisions(
          run.initial_positions, run.moves, run.final_time, tolerance);
      const CollisionReport& live = monitor.report();
      // Bit-identical closest approach: both audits evaluate the same piece
      // windows with the same arguments.
      EXPECT_EQ(live.min_separation, post.min_separation)
          << c.algorithm << " tol " << tolerance;
      EXPECT_EQ(live.position_collisions, post.position_collisions);
      EXPECT_EQ(live.path_crossings, post.path_crossings);
      EXPECT_EQ(live.clean(), post.clean());
      EXPECT_EQ(live.hazard_free(1e-9), post.hazard_free(1e-9));
      EXPECT_EQ(live.first_incident.has_value(), post.first_incident.has_value());
    }
  }
}

TEST(StreamingCollision, FlagsAnEngineeredHeadOnCollision) {
  // Two robots swap positions along the same line in the same FSYNC round:
  // both a position collision (they meet halfway) and a crossing of paths.
  class SwapProbe final : public model::Algorithm {
   public:
    model::Action compute(const model::Snapshot& snap) const override {
      if (snap.self_light != Light::kOff || snap.visible_count() == 0) {
        return model::Action::stay(snap.self_light == Light::kOff
                                       ? Light::kCorner
                                       : snap.self_light);
      }
      return model::Action::move_to(snap.other_positions().front(),
                                    Light::kCorner);
    }
    std::string_view name() const noexcept override { return "probe-swap"; }
    std::span<const Light> palette() const noexcept override {
      return model::kAllLights;
    }
  };
  const SwapProbe probe;
  const std::vector<Vec2> initial{{0.0, 0.0}, {1.0, 0.0}};
  const RunConfig config = scheduler_config(SchedulerKind::kFsync, 1);
  // Local-frame round-trips leave the targets within ulps of an exact swap,
  // so the closest approach is ~0 but not bitwise zero; audit with a small
  // positive tolerance.
  const double tolerance = 1e-9;
  StreamingCollisionMonitor monitor(tolerance);
  RunObserver* obs[] = {&monitor};
  const RunResult run = run_simulation(probe, initial, config, obs);
  const CollisionReport post = check_collisions(
      run.initial_positions, run.moves, run.final_time, tolerance);
  EXPECT_GT(monitor.report().position_collisions, 0u);
  EXPECT_LT(monitor.report().min_separation, tolerance);
  EXPECT_EQ(monitor.report().min_separation, post.min_separation);
  EXPECT_EQ(monitor.report().position_collisions, post.position_collisions);
  EXPECT_EQ(monitor.report().path_crossings, post.path_crossings);
  EXPECT_FALSE(monitor.report().clean());
}

TEST(StreamingCollision, RetainsBoundedPieceHistoryOnLongRuns) {
  // The whole point of the streaming audit: its working set tracks the
  // moves currently in reach, not the run length.
  class PeakProbe final : public RunObserver {
   public:
    explicit PeakProbe(const StreamingCollisionMonitor& monitor)
        : monitor_(monitor) {}
    void on_move_complete(const MoveSegment&, const WorldView&) override {
      peak = std::max(peak, monitor_.retained_pieces());
    }
    std::size_t peak = 0;

   private:
    const StreamingCollisionMonitor& monitor_;
  };
  // A probe that wanders forever (unit step in a freshly random local frame
  // every cycle) and runs to the cycle cap: the move count grows with the
  // cap, the retained window must not.
  class WanderProbe final : public model::Algorithm {
   public:
    model::Action compute(const model::Snapshot&) const override {
      return model::Action::move_to(Vec2{1.0, 0.0}, Light::kOff);
    }
    std::string_view name() const noexcept override { return "probe-wander"; }
    std::span<const Light> palette() const noexcept override {
      return model::kAllLights;
    }
  };
  const WanderProbe wander;
  const auto initial = disk(6, 17);
  StreamingCollisionMonitor monitor(0.0);
  PeakProbe probe(monitor);
  RunObserver* obs[] = {&monitor, &probe};
  RunConfig config = scheduler_config(SchedulerKind::kAsync, 17);
  config.record_moves = false;
  config.max_cycles_per_robot = 100;
  const RunResult run = run_simulation(wander, initial, config, obs);
  ASSERT_FALSE(run.converged);  // Capped, by construction.
  ASSERT_GT(run.total_moves, 400u);
  // Pieces (idle + move) retained at once stay well below the full log a
  // post-hoc audit would need (2 * total_moves + n pieces).
  EXPECT_LT(probe.peak, run.total_moves / 4);
}

// --- Streaming epochs ------------------------------------------------------

TEST(StreamingEpochs, DetectorMatchesPostHocTimelineBoundaries) {
  // Synthetic staggered cycles, including an instantaneous-cycle cluster
  // that exercises the zero-length-epoch guard.
  const sched::CycleRecord records[] = {
      {0, 0.0, 1.0}, {1, 0.0, 2.5}, {2, 0.5, 0.5},  // epoch 1 needs all three
      {0, 1.0, 1.5}, {2, 0.5, 3.0},                 // robot 2 re-qualifies
      {1, 2.5, 4.0}, {0, 3.5, 4.5}, {2, 3.0, 5.0},
      {0, 4.5, 4.5}, {1, 4.5, 4.5}, {2, 4.5, 4.5},  // instantaneous cluster
      {0, 4.5, 6.0}, {1, 5.0, 6.5}, {2, 5.5, 7.0},
  };
  sched::EpochTimeline timeline(3);
  sched::StreamingEpochDetector detector(3);
  std::size_t closed = 0;
  for (const auto& rec : records) {
    timeline.add_cycle(rec);
    closed += detector.add_cycle(rec);
  }
  EXPECT_EQ(closed, detector.boundaries().size());
  for (const double horizon : {0.0, 1.0, 2.5, 3.0, 4.49, 4.5, 5.0, 7.0, 99.0}) {
    EXPECT_EQ(detector.count_epochs(horizon), timeline.count_epochs(horizon))
        << "horizon " << horizon;
  }
  const auto post = timeline.epoch_boundaries(1e300);
  ASSERT_EQ(detector.boundaries().size(), post.size());
  for (std::size_t i = 0; i < post.size(); ++i) {
    EXPECT_EQ(detector.boundaries()[i], post[i]);
  }
}

// --- Quiescence verdicts across schedulers ---------------------------------

TEST(Quiescence, LightOnlyFinalChangeConvergesEverywhere) {
  // Off -> (move, Transit) -> light-only (stay, Corner) -> null: the last
  // world change is a light flip, which must still arm quiescence.
  class MoveThenRecolor final : public model::Algorithm {
   public:
    model::Action compute(const model::Snapshot& snap) const override {
      if (snap.self_light == Light::kOff) {
        return model::Action::move_to(Vec2{1.0, 0.0}, Light::kTransit);
      }
      return model::Action::stay(Light::kCorner);
    }
    std::string_view name() const noexcept override { return "probe-recolor"; }
    std::span<const Light> palette() const noexcept override {
      return model::kAllLights;
    }
  };
  const MoveThenRecolor probe;
  for (const SchedulerKind scheduler :
       {SchedulerKind::kAsync, SchedulerKind::kSsync, SchedulerKind::kFsync}) {
    const auto initial = disk(8, 2);
    RunConfig config = scheduler_config(scheduler, 2);
    config.activation = sched::ActivationKind::kSingleton;
    const RunResult run = run_simulation(probe, initial, config);
    EXPECT_TRUE(run.converged) << to_string(scheduler);
    for (const Light l : run.final_lights) EXPECT_EQ(l, Light::kCorner);
  }
}

TEST(Quiescence, NonRigidStopShortStillConverges) {
  const auto initial = disk(14, 11);
  for (const SchedulerKind scheduler :
       {SchedulerKind::kAsync, SchedulerKind::kSsync, SchedulerKind::kFsync}) {
    RunConfig config = scheduler_config(scheduler, 11);
    config.rigid_moves = false;
    config.nonrigid_min_progress = 0.25;
    const auto name =
        scheduler == SchedulerKind::kAsync ? "async-log" : "ssync-parallel";
    const RunResult run =
        run_simulation(*core::make_algorithm(name), initial, config);
    EXPECT_TRUE(run.converged) << to_string(scheduler);
    EXPECT_TRUE(verify_complete_visibility(run.final_positions).complete())
        << to_string(scheduler);
  }
}

}  // namespace
}  // namespace lumen::sim
