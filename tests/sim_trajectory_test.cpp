// Trajectory tests: piecewise-linear motion reconstruction.
#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

namespace lumen::sim {
namespace {

using geom::Vec2;

TEST(MoveSegment, InterpolatesLinearly) {
  const MoveSegment m{0, 2.0, 6.0, {0, 0}, {8, 4}};
  EXPECT_EQ(m.at(1.0), (Vec2{0, 0}));
  EXPECT_EQ(m.at(2.0), (Vec2{0, 0}));
  EXPECT_EQ(m.at(4.0), (Vec2{4, 2}));
  EXPECT_EQ(m.at(6.0), (Vec2{8, 4}));
  EXPECT_EQ(m.at(7.0), (Vec2{8, 4}));
  EXPECT_NEAR(m.length(), std::sqrt(80.0), 1e-12);
}

TEST(MoveSegment, InstantaneousJump) {
  const MoveSegment m{0, 3.0, 3.0, {1, 1}, {5, 5}};
  EXPECT_EQ(m.at(2.9), (Vec2{1, 1}));
  // At or after the (zero-length) window the robot is at the destination...
  EXPECT_EQ(m.at(3.1), (Vec2{5, 5}));
}

TEST(Trajectory, IdleRobotStaysPut) {
  const Trajectory traj({3, 4}, {});
  EXPECT_EQ(traj.at(0.0), (Vec2{3, 4}));
  EXPECT_EQ(traj.at(100.0), (Vec2{3, 4}));
  EXPECT_EQ(traj.final(), (Vec2{3, 4}));
  EXPECT_DOUBLE_EQ(traj.total_distance(), 0.0);
}

TEST(Trajectory, ChainsMovesWithIdleGaps) {
  std::vector<MoveSegment> moves = {
      {0, 1.0, 2.0, {0, 0}, {10, 0}},
      {0, 5.0, 7.0, {10, 0}, {10, 20}},
  };
  const Trajectory traj({0, 0}, std::move(moves));
  EXPECT_EQ(traj.at(0.5), (Vec2{0, 0}));
  EXPECT_EQ(traj.at(1.5), (Vec2{5, 0}));
  EXPECT_EQ(traj.at(3.0), (Vec2{10, 0}));  // Idle between moves.
  EXPECT_EQ(traj.at(6.0), (Vec2{10, 10}));
  EXPECT_EQ(traj.at(9.0), (Vec2{10, 20}));
  EXPECT_EQ(traj.final(), (Vec2{10, 20}));
  EXPECT_DOUBLE_EQ(traj.total_distance(), 30.0);
}

TEST(Trajectory, SortsOutOfOrderInput) {
  std::vector<MoveSegment> moves = {
      {0, 5.0, 6.0, {1, 0}, {2, 0}},
      {0, 1.0, 2.0, {0, 0}, {1, 0}},
  };
  const Trajectory traj({0, 0}, std::move(moves));
  EXPECT_EQ(traj.at(1.5), (Vec2{0.5, 0}));
  EXPECT_EQ(traj.at(5.5), (Vec2{1.5, 0}));
}

TEST(Trajectory, RejectsOverlappingSegments) {
  std::vector<MoveSegment> moves = {
      {0, 1.0, 3.0, {0, 0}, {1, 0}},
      {0, 2.0, 4.0, {1, 0}, {2, 0}},
  };
  EXPECT_THROW(Trajectory({0, 0}, std::move(moves)), std::invalid_argument);
}

TEST(BuildTrajectories, SplitsByRobot) {
  const std::vector<Vec2> initial = {{0, 0}, {10, 10}, {20, 20}};
  const std::vector<MoveSegment> moves = {
      {1, 0.0, 1.0, {10, 10}, {11, 11}},
      {0, 0.0, 2.0, {0, 0}, {5, 5}},
      {1, 3.0, 4.0, {11, 11}, {12, 12}},
  };
  const auto trajs = build_trajectories(initial, moves);
  ASSERT_EQ(trajs.size(), 3u);
  EXPECT_EQ(trajs[0].moves().size(), 1u);
  EXPECT_EQ(trajs[1].moves().size(), 2u);
  EXPECT_EQ(trajs[2].moves().size(), 0u);
  EXPECT_EQ(trajs[1].final(), (Vec2{12, 12}));
  EXPECT_EQ(trajs[2].final(), (Vec2{20, 20}));
}

TEST(BuildTrajectories, RejectsUnknownRobot) {
  const std::vector<Vec2> initial = {{0, 0}};
  const std::vector<MoveSegment> moves = {{3, 0.0, 1.0, {0, 0}, {1, 1}}};
  EXPECT_THROW(build_trajectories(initial, moves), std::out_of_range);
}

}  // namespace
}  // namespace lumen::sim
