// The fabric chaos harness (DESIGN.md §17): end-to-end property tests over
// the REAL lumen-bench binary (path injected as LUMEN_BENCH_BIN).
//
// The acceptance property: a campaign distributed over W worker processes —
// with random SIGKILLs injected at cell boundaries, with the coordinator
// itself killed and restarted, with SIGTERM drains — always produces a
// final report BYTE-IDENTICAL to the single-process run. Crash tolerance
// here is not "usually recovers": it is an exact-equality invariant.
#include "fabric/process.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace lumen::fabric {
namespace {

// A workload big enough that workers are genuinely mid-flight when chaos
// hits (~50 cells across the experiment's campaigns), small enough that the
// whole suite stays in tens of seconds.
const char* kWorkload =
    " run convergence --ns=24 --runs=16 --seed-base=500 --format=json ";

std::string bench() { return LUMEN_BENCH_BIN; }

// Per-process unique: ctest runs each TEST as its own process, possibly in
// parallel, so sibling tests must never share scratch paths.
std::string work_dir() {
  static const std::string dir = [] {
    std::string d = testing::TempDir() + "lumen_fabric_chaos." +
                    std::to_string(::getpid());
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream text;
  text << f.rdbuf();
  return text.str();
}

std::size_t file_lines(const std::string& path) {
  std::ifstream f(path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(f, line)) ++lines;
  return lines;
}

/// Runs `shell` to completion; returns its exit code (-1 on signal death).
int run_shell(const std::string& shell) {
  std::string error;
  auto child = ChildProcess::spawn({"/bin/sh", "-c", shell}, &error);
  if (!child) {
    ADD_FAILURE() << "spawn: " << error;
    return -1;
  }
  bool closed = false;
  while (!closed) {
    (void)child->read_lines(&closed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  child->reap_with_timeout(300000);
  const auto& exit = child->exit_status();
  return exit && !exit->signaled ? exit->code : -1;
}

/// The single-process run every distributed variant must reproduce: same
/// report bytes AND same exit code (whether the experiment's claims pass at
/// this off-default size is irrelevant to the identity property — but the
/// fabric must not change the verdict either).
struct GoldenRun {
  int code = -1;
  std::string report;
};

const GoldenRun& golden() {
  static const GoldenRun run = [] {
    GoldenRun g;
    const std::string out = work_dir() + "/golden.json";
    g.code = run_shell(bench() + kWorkload + "--out=" + out);
    EXPECT_GE(g.code, 0) << "golden run died on a signal";
    g.report = read_file(out);
    return g;
  }();
  return run;
}

TEST(FabricChaos, WorkersMatchInProcessGoldenByteForByte) {
  ASSERT_FALSE(golden().report.empty());
  for (const int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const std::string tag = work_dir() + "/plain-w" + std::to_string(workers);
    const int code = run_shell(bench() + kWorkload + "--workers=" +
                               std::to_string(workers) + " --fabric-dir=" +
                               tag + ".fabric --out=" + tag + ".json 2>" +
                               tag + ".log");
    EXPECT_EQ(code, golden().code) << read_file(tag + ".log");
    EXPECT_EQ(read_file(tag + ".json"), golden().report);
  }
}

// The headline chaos property: workers are SIGKILLed at random cell
// boundaries (deterministic chaos stream per seed) and the merged report
// still equals the golden bytes — fencing tokens plus first-write-wins
// journal merging make every crash invisible to the result.
TEST(FabricChaos, RandomWorkerSigkillsPreserveReportBytes) {
  ASSERT_FALSE(golden().report.empty());
  for (const int workers : {2, 4}) {
    for (const int seed : {1, 2}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) + " chaos-seed=" +
                   std::to_string(seed));
      const std::string tag = work_dir() + "/chaos-w" +
                              std::to_string(workers) + "-s" +
                              std::to_string(seed);
      const int code = run_shell(
          bench() + kWorkload + "--workers=" + std::to_string(workers) +
          " --chaos-kill=0.4 --chaos-seed=" + std::to_string(seed) +
          " --fabric-dir=" + tag + ".fabric --out=" + tag + ".json 2>" +
          tag + ".log");
      const std::string log = read_file(tag + ".log");
      EXPECT_EQ(code, golden().code) << log;
      EXPECT_EQ(read_file(tag + ".json"), golden().report);
      // ~50 cells at kill rate 0.4: the run must actually have been chaotic
      // (kills injected, crashed workers re-leased) to prove anything.
      EXPECT_NE(log.find("chaos kill"), std::string::npos);
      EXPECT_NE(log.find("reclaiming"), std::string::npos);
    }
  }
}

// SIGTERM mid-campaign: the coordinator drains the fleet, flushes the
// journal and a partial report, and exits 3; re-running with --resume
// completes to the golden bytes without redoing finished cells.
TEST(FabricChaos, SigtermDrainsToExitThreeAndResumesByteIdentically) {
  ASSERT_FALSE(golden().report.empty());
  const std::string dir = work_dir() + "/drain";
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/journal.jsonl";
  const std::string partial = dir + "/partial.json";

  std::string error;
  // `exec` so the shell replaces itself: the spawned child must BE the
  // coordinator (with a redirection, sh would otherwise keep a wrapper
  // process alive and the SIGTERM would land on that instead).
  auto child = ChildProcess::spawn(
      {"/bin/sh", "-c",
       "exec " + bench() + kWorkload + "--workers=2 --journal=" + journal +
           " --fabric-dir=" + dir + "/fabric --out=" + partial +
           " 2>" + dir + "/drain.log"},
      &error);
  ASSERT_TRUE(child.has_value()) << error;
  // Wait for real progress (a couple of durable cell records) so the
  // SIGTERM genuinely lands mid-campaign.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (file_lines(journal) < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(file_lines(journal), 4u) << "no progress before the deadline";
  child->kill(SIGTERM);
  child->reap_with_timeout(60000);
  const auto& exit = child->exit_status();
  ASSERT_TRUE(exit.has_value());
  ASSERT_FALSE(exit->signaled) << "must drain, not die, on SIGTERM";
  ASSERT_EQ(exit->code, 3) << read_file(dir + "/drain.log");

  const std::size_t journaled = file_lines(journal);
  const int code = run_shell(bench() + kWorkload + "--workers=2 --resume=" +
                             journal + " --fabric-dir=" + dir +
                             "/fabric --out=" + dir + "/resumed.json 2>" +
                             dir + "/resume.log");
  EXPECT_EQ(code, golden().code) << read_file(dir + "/resume.log");
  EXPECT_EQ(read_file(dir + "/resumed.json"), golden().report);
  EXPECT_GE(file_lines(journal), journaled)
      << "resume appends to the canonical journal, never rewrites it";
}

// SIGKILL the COORDINATOR mid-campaign — the harshest crash. The shard
// journals it leaves behind are the recovery state: re-running the same
// command resumes from them (same campaign key -> same fabric directory)
// and still produces the golden bytes.
TEST(FabricChaos, CoordinatorSigkillResumesFromShardJournals) {
  ASSERT_FALSE(golden().report.empty());
  const std::string dir = work_dir() + "/coord-kill";
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/journal.jsonl";
  const std::string command = bench() + kWorkload + "--workers=2 --journal=" +
                              journal + " --fabric-dir=" + dir +
                              "/fabric --out=" + dir + "/report.json";

  std::string error;
  // `exec` so the SIGKILL lands on the coordinator itself, not a shell
  // wrapper kept alive by the redirection.
  auto child = ChildProcess::spawn(
      {"/bin/sh", "-c", "exec " + command + " 2>/dev/null"}, &error);
  ASSERT_TRUE(child.has_value()) << error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  // Shard journals, not the canonical one, hold the mid-flight state: wait
  // until at least one worker has durably finished a cell.
  const auto shard_cells = [&] {
    std::size_t cells = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             dir + "/fabric", ec)) {
      if (entry.path().extension() == ".jsonl") {
        const std::size_t lines = file_lines(entry.path().string());
        cells += lines > 2 ? lines - 2 : 0;
      }
    }
    return cells;
  };
  while (shard_cells() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(shard_cells(), 2u) << "no shard progress before the deadline";
  child->kill(SIGKILL);
  child->reap_with_timeout(60000);
  ASSERT_TRUE(child->exit_status().has_value());
  EXPECT_TRUE(child->exit_status()->signaled);

  // Orphaned workers notice the dead coordinator (EPIPE) and drain on
  // their own; the rerun resumes from whatever they managed to journal.
  const int code = run_shell(command + " 2>" + dir + "/rerun.log");
  EXPECT_EQ(code, golden().code) << read_file(dir + "/rerun.log");
  EXPECT_EQ(read_file(dir + "/report.json"), golden().report);
}

}  // namespace
}  // namespace lumen::fabric
