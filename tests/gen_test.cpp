// Generator tests: determinism, distinctness, separation contracts, and the
// defining property of each family.
#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/hull.hpp"
#include "geom/polygon.hpp"

namespace lumen::gen {
namespace {

using geom::Vec2;

class FamilyContractTest
    : public ::testing::TestWithParam<std::tuple<ConfigFamily, std::size_t>> {};

TEST_P(FamilyContractTest, CorrectCountDistinctAndSeparated) {
  const auto [family, n] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto pts = generate(family, n, seed, 1e-3);
    ASSERT_EQ(pts.size(), n);
    if (n >= 2) {
      EXPECT_GE(geom::min_pairwise_distance(pts), 1e-3 * 0.999)
          << to_string(family) << " seed " << seed;
    }
  }
}

TEST_P(FamilyContractTest, DeterministicInSeed) {
  const auto [family, n] = GetParam();
  const auto a = generate(family, n, 77);
  const auto b = generate(family, n, 77);
  EXPECT_EQ(a, b);
  if (n >= 3) {
    const auto c = generate(family, n, 78);
    EXPECT_NE(a, c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyContractTest,
    ::testing::Combine(::testing::ValuesIn(all_families()),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{17}, std::size_t{64})));

TEST(Generators, CollinearFamilyIsExactlyCollinear) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = generate(ConfigFamily::kCollinear, 20, seed);
    EXPECT_TRUE(geom::all_collinear(pts)) << "seed " << seed;
  }
}

TEST(Generators, NearCollinearFamilyIsThin) {
  const auto pts = generate(ConfigFamily::kNearCollinear, 40, 5);
  EXPECT_TRUE(geom::nearly_collinear(pts, 1e-3));
  EXPECT_FALSE(geom::all_collinear(pts));
}

TEST(Generators, GridFamilyIsNotCollinear) {
  const auto pts = generate(ConfigFamily::kGrid, 49, 5);
  EXPECT_FALSE(geom::all_collinear(pts));
}

TEST(Generators, RingWithCoreHasManyHullPoints) {
  const auto pts = generate(ConfigFamily::kRingWithCore, 100, 5);
  const auto hull = geom::convex_hull_indices(pts);
  // A majority of robots sit on/near the ring; the hull is corner-rich.
  EXPECT_GE(hull.size(), 20u);
}

TEST(Generators, GaussianBlobHasFewHullPoints) {
  const auto pts = generate(ConfigFamily::kGaussianBlob, 200, 5);
  const auto hull = geom::convex_hull_indices(pts);
  EXPECT_LE(hull.size(), 40u);
}

TEST(Generators, DenseDiameterHasAnchorsAndThinBody) {
  const auto pts = generate(ConfigFamily::kDenseDiameter, 50, 5);
  EXPECT_EQ(pts[0], (Vec2{-100, 0}));
  EXPECT_EQ(pts[1], (Vec2{100, 0}));
  for (std::size_t i = 2; i < pts.size(); ++i) {
    EXPECT_LE(std::fabs(pts[i].y), 2.0);
  }
}

TEST(Generators, LatticeFamilyIsDistinctIntegerPoints) {
  const auto pts = generate(ConfigFamily::kLattice, 64, 5);
  for (const Vec2& p : pts) {
    EXPECT_EQ(p.x, std::nearbyint(p.x));
    EXPECT_EQ(p.y, std::nearbyint(p.y));
  }
  // Distinct integer points are at least one unit apart.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(geom::norm(pts[i] - pts[j]), 1.0);
    }
  }
}

TEST(Generators, FamilyNamesRoundTrip) {
  for (const auto f : all_families()) {
    EXPECT_NE(to_string(f), "?");
  }
  EXPECT_EQ(all_families().size(), 10u);
}

TEST(Generators, DifferentFamiliesDifferAtSameSeed) {
  const auto a = generate(ConfigFamily::kUniformDisk, 16, 9);
  const auto b = generate(ConfigFamily::kUniformSquare, 16, 9);
  EXPECT_NE(a, b);
}

TEST(Generators, ImpossibleSeparationThrows) {
  // 1000 robots at separation 50 cannot fit in a radius-100 disk.
  EXPECT_THROW(generate(ConfigFamily::kUniformDisk, 1000, 1, 50.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace lumen::gen
