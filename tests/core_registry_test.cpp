// Plugin-contract tests of the algorithm registry and the success-predicate
// resolver: error paths name every valid choice, and the advertised
// AlgorithmInfo traits match what the constructed instances declare.
#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "geom/vec2.hpp"
#include "sim/monitors.hpp"

namespace lumen::core {
namespace {

using geom::Vec2;

TEST(RegistryContract, NamesAndInfosAlign) {
  const auto names = algorithm_names();
  const auto infos = algorithm_infos();
  ASSERT_EQ(names.size(), infos.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(infos[i].name, names[i]);
  }
}

TEST(RegistryContract, InfosMatchConstructedInstances) {
  for (const auto& info : algorithm_infos()) {
    const auto algo = make_algorithm(info.name);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), info.name);
    EXPECT_EQ(algo->motion_model(), info.motion_model);
    EXPECT_EQ(algo->palette().size(), info.palette_size);
    EXPECT_EQ(algo->success_predicate(), info.success_predicate);
  }
}

TEST(RegistryContract, PluginsDeclareTheirTraits) {
  EXPECT_EQ(make_algorithm("grid-cv")->motion_model(),
            model::MotionModel::kGrid);
  EXPECT_EQ(make_algorithm("grid-cv")->success_predicate(),
            "mutual-visibility");
  EXPECT_EQ(make_algorithm("mutual-vis")->motion_model(),
            model::MotionModel::kContinuous);
  EXPECT_EQ(make_algorithm("mutual-vis")->success_predicate(),
            "mutual-visibility");
  // The paper's algorithms keep the defaults.
  EXPECT_EQ(make_algorithm("async-log")->motion_model(),
            model::MotionModel::kContinuous);
  EXPECT_EQ(make_algorithm("async-log")->success_predicate(),
            "complete-visibility");
}

TEST(RegistryContract, UnknownNameThrowListsEveryRegisteredName) {
  try {
    (void)make_algorithm("no-such-algorithm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-algorithm"), std::string::npos);
    for (const auto& name : algorithm_names()) {
      EXPECT_NE(what.find(std::string(name)), std::string::npos)
          << "message must list " << name;
    }
  }
}

TEST(RegistryContract, JoinedNamesUseCommaSeparators) {
  const std::string joined = algorithm_names_joined();
  for (const auto& name : algorithm_names()) {
    EXPECT_NE(joined.find(std::string(name)), std::string::npos);
  }
  EXPECT_NE(joined.find(", "), std::string::npos);
}

TEST(MotionModelNames, ToStringCoversBothModels) {
  EXPECT_EQ(model::to_string(model::MotionModel::kContinuous), "continuous");
  EXPECT_EQ(model::to_string(model::MotionModel::kGrid), "grid");
}

// --- sim::verify_success, the predicate the plugin contract resolves to ----

TEST(SuccessPredicates, UnknownPredicateThrowListsValidNames) {
  const Vec2 square[] = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  try {
    (void)sim::verify_success("no-such-predicate", square);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const auto& name : sim::success_predicate_names()) {
      EXPECT_NE(what.find(std::string(name)), std::string::npos)
          << "message must list " << name;
    }
  }
}

TEST(SuccessPredicates, ConvexSetSatisfiesBoth) {
  const Vec2 square[] = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(sim::verify_success("complete-visibility", square).satisfied);
  EXPECT_TRUE(sim::verify_success("mutual-visibility", square).satisfied);
}

TEST(SuccessPredicates, ConcaveButUnobstructedSplitsThePredicates) {
  // (1,1) is interior to the triangle hull, so the set is not strictly
  // convex — yet no robot lies ON a segment between two others, so every
  // pair still sees each other.
  const Vec2 concave[] = {{0, 0}, {4, 0}, {0, 4}, {1, 1}};
  const auto complete = sim::verify_success("complete-visibility", concave);
  const auto mutual = sim::verify_success("mutual-visibility", concave);
  EXPECT_FALSE(complete.satisfied);
  EXPECT_TRUE(mutual.satisfied);
  EXPECT_TRUE(mutual.visibility.mutually_visible);
}

TEST(SuccessPredicates, ObstructedLineFailsBoth) {
  const Vec2 line[] = {{0, 0}, {2, 0}, {4, 0}};
  EXPECT_FALSE(sim::verify_success("complete-visibility", line).satisfied);
  EXPECT_FALSE(sim::verify_success("mutual-visibility", line).satisfied);
}

}  // namespace
}  // namespace lumen::core
