// Cross-cutting property sweeps over full executions: invariants that must
// hold for EVERY (algorithm, scheduler, family) combination the system
// supports, checked over seeded campaigns. These are the "laws of the
// simulator" rather than per-module behaviours.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "geom/hull.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"

namespace lumen {
namespace {

using sim::RunConfig;
using sim::SchedulerKind;

struct Combo {
  std::string algorithm;
  SchedulerKind scheduler;
  gen::ConfigFamily family;
};

class ExecutionLawsTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, SchedulerKind, gen::ConfigFamily>> {};

TEST_P(ExecutionLawsTest, InvariantsHoldOverSeeds) {
  const auto [algorithm, scheduler, family] = GetParam();
  const auto algo = core::make_algorithm(algorithm);
  for (std::uint64_t seed = 40; seed < 43; ++seed) {
    const auto initial = gen::generate(family, 20, seed);
    RunConfig config;
    config.scheduler = scheduler;
    config.seed = seed;
    const auto run = sim::run_simulation(*algo, initial, config);

    // Law 1: initial positions are preserved verbatim in the result.
    EXPECT_EQ(run.initial_positions, initial);

    // Law 2: move segments chain — each robot's moves start where the
    // previous one ended (build_trajectories throws otherwise).
    const auto trajectories =
        sim::build_trajectories(run.initial_positions, run.moves);
    for (std::size_t i = 0; i < trajectories.size(); ++i) {
      EXPECT_EQ(trajectories[i].final(), run.final_positions[i]);
      const auto& moves = trajectories[i].moves();
      for (std::size_t k = 1; k < moves.size(); ++k) {
        EXPECT_EQ(moves[k].from, moves[k - 1].to);
      }
      if (!moves.empty()) {
        EXPECT_EQ(moves.front().from, initial[i]);
      }
    }

    // Law 3: time is sane — move windows are positive (sync rounds are
    // unit-length) and within [0, final_time].
    for (const auto& m : run.moves) {
      EXPECT_LT(m.t0, m.t1);
      EXPECT_GE(m.t0, 0.0);
      EXPECT_LE(m.t1, run.final_time + 1e-9);
    }

    // Law 4: epoch count is positive and bounded by total cycles.
    if (run.converged && run.total_cycles > 0) {
      EXPECT_GE(run.epochs, 1u);
      EXPECT_LE(run.epochs, run.total_cycles);
    }

    // Law 5: colors stay within the algorithm's palette size.
    EXPECT_LE(run.distinct_lights_used(), algo->palette().size());

    // Law 6 (solver correctness on its home scheduler): converged runs end
    // in strictly convex position with full mutual visibility.
    if (run.converged) {
      EXPECT_TRUE(
          sim::verify_complete_visibility(run.final_positions).complete())
          << algorithm << "/" << to_string(scheduler) << "/"
          << gen::to_string(family) << " seed " << seed;
    } else {
      ADD_FAILURE() << "non-convergence: " << algorithm << "/"
                    << to_string(scheduler) << "/" << gen::to_string(family)
                    << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AsyncLogEverywhere, ExecutionLawsTest,
    ::testing::Combine(::testing::Values(std::string("async-log")),
                       ::testing::Values(SchedulerKind::kAsync,
                                         SchedulerKind::kSsync,
                                         SchedulerKind::kFsync),
                       ::testing::Values(gen::ConfigFamily::kUniformDisk,
                                         gen::ConfigFamily::kMultiCluster,
                                         gen::ConfigFamily::kCollinear,
                                         gen::ConfigFamily::kGrid)));

INSTANTIATE_TEST_SUITE_P(
    BaselineAsync, ExecutionLawsTest,
    ::testing::Combine(::testing::Values(std::string("seq-baseline")),
                       ::testing::Values(SchedulerKind::kAsync),
                       ::testing::Values(gen::ConfigFamily::kUniformDisk,
                                         gen::ConfigFamily::kRingWithCore)));

INSTANTIATE_TEST_SUITE_P(
    SsyncParallelHome, ExecutionLawsTest,
    ::testing::Combine(::testing::Values(std::string("ssync-parallel")),
                       ::testing::Values(SchedulerKind::kFsync,
                                         SchedulerKind::kSsync),
                       ::testing::Values(gen::ConfigFamily::kUniformDisk)));

TEST(ExecutionLaws, NonRigidAcrossFamilies) {
  const auto algo = core::make_algorithm("async-log");
  for (const auto family :
       {gen::ConfigFamily::kUniformDisk, gen::ConfigFamily::kCollinear,
        gen::ConfigFamily::kRingWithCore}) {
    const auto initial = gen::generate(family, 20, 51);
    RunConfig config;
    config.seed = 51;
    config.rigid_moves = false;
    const auto run = sim::run_simulation(*algo, initial, config);
    EXPECT_TRUE(run.converged) << gen::to_string(family);
    EXPECT_TRUE(sim::verify_complete_visibility(run.final_positions).complete())
        << gen::to_string(family);
  }
}

TEST(ExecutionLaws, EpochsGrowWithNInExpectation) {
  const auto algo = core::make_algorithm("async-log");
  double small_sum = 0.0, large_sum = 0.0;
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    RunConfig config;
    config.seed = seed;
    small_sum += static_cast<double>(
        sim::run_simulation(
            *algo, gen::generate(gen::ConfigFamily::kUniformDisk, 8, seed),
            config)
            .epochs);
    large_sum += static_cast<double>(
        sim::run_simulation(
            *algo, gen::generate(gen::ConfigFamily::kUniformDisk, 96, seed),
            config)
            .epochs);
  }
  EXPECT_LT(small_sum, large_sum);
}

}  // namespace
}  // namespace lumen
