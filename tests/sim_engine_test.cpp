// Engine tests: determinism, scheduler semantics, epoch accounting, light
// auditing, quiescence detection, and the cycle-cap abort path — exercised
// with both the real algorithms and purpose-built probe algorithms.
#include "sim/monitors.hpp"
#include "sim/run.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "model/algorithm.hpp"

namespace lumen::sim {
namespace {

using geom::Vec2;
using model::Action;
using model::Light;

/// Probe: never moves, always shows Corner.
class StayAlgorithm final : public model::Algorithm {
 public:
  Action compute(const model::Snapshot&) const override {
    return Action::stay(Light::kCorner);
  }
  std::string_view name() const noexcept override { return "probe-stay"; }
  std::span<const Light> palette() const noexcept override {
    return model::kAllLights;
  }
};

/// Probe: dithers forever (never quiesces) by toggling between two lights.
class DitherAlgorithm final : public model::Algorithm {
 public:
  Action compute(const model::Snapshot& snap) const override {
    return Action::stay(snap.self_light == Light::kLine ? Light::kSide
                                                        : Light::kLine);
  }
  std::string_view name() const noexcept override { return "probe-dither"; }
  std::span<const Light> palette() const noexcept override {
    return model::kAllLights;
  }
};

RunConfig async_config(std::uint64_t seed) {
  RunConfig config;
  config.scheduler = SchedulerKind::kAsync;
  config.seed = seed;
  return config;
}

TEST(Engine, EmptyAndSingletonConfigurations) {
  const StayAlgorithm algo;
  const auto empty = run_simulation(algo, std::vector<Vec2>{}, async_config(1));
  EXPECT_TRUE(empty.converged);
  EXPECT_EQ(empty.total_cycles, 0u);

  const auto one = run_simulation(algo, std::vector<Vec2>{{3, 3}}, async_config(1));
  EXPECT_TRUE(one.converged);
  EXPECT_EQ(one.total_moves, 0u);
  EXPECT_EQ(one.final_positions[0], (Vec2{3, 3}));
}

TEST(Engine, StayAlgorithmQuiescesQuickly) {
  const StayAlgorithm algo;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 20, 2);
  const auto run = run_simulation(algo, initial, async_config(2));
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.total_moves, 0u);
  EXPECT_EQ(run.final_positions, run.initial_positions);
  // Everyone announced Corner once, then one null confirmation cycle each:
  // a handful of cycles per robot, not hundreds.
  EXPECT_LE(run.total_cycles, 20u * 8u);
  EXPECT_LE(run.epochs, 4u);
  // Colors: Off (initial) + Corner.
  EXPECT_EQ(run.distinct_lights_used(), 2u);
}

TEST(Engine, DitherHitsCycleCapWithoutConverging) {
  const DitherAlgorithm algo;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 5, 2);
  RunConfig config = async_config(2);
  config.max_cycles_per_robot = 50;
  const auto run = run_simulation(algo, initial, config);
  EXPECT_FALSE(run.converged);
  EXPECT_GE(run.total_cycles, 5u * 50u);
}

TEST(Engine, DeterministicInSeed) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 24, 3);
  const auto a = run_simulation(*algo, initial, async_config(9));
  const auto b = run_simulation(*algo, initial, async_config(9));
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.final_positions, b.final_positions);
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    EXPECT_EQ(a.moves[i].robot, b.moves[i].robot);
    EXPECT_EQ(a.moves[i].t0, b.moves[i].t0);
    EXPECT_EQ(a.moves[i].to, b.moves[i].to);
  }
  const auto c = run_simulation(*algo, initial, async_config(10));
  EXPECT_NE(a.final_positions, c.final_positions);
}

TEST(Engine, MoveLogIsConsistentWithFinalPositions) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 24, 5);
  const auto run = run_simulation(*algo, initial, async_config(5));
  ASSERT_TRUE(run.converged);
  const auto trajectories = build_trajectories(run.initial_positions, run.moves);
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    EXPECT_EQ(trajectories[i].final(), run.final_positions[i]) << i;
    EXPECT_EQ(trajectories[i].at(run.final_time + 1.0), run.final_positions[i]);
  }
  double dist = 0.0;
  for (const auto& t : trajectories) dist += t.total_distance();
  EXPECT_NEAR(dist, run.total_distance, 1e-9);
}

TEST(Engine, FsyncEpochsEqualRoundsForStay) {
  const StayAlgorithm algo;
  RunConfig config;
  config.scheduler = SchedulerKind::kFsync;
  config.seed = 4;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 10, 4);
  const auto run = run_simulation(algo, initial, config);
  EXPECT_TRUE(run.converged);
  // Round 0 announces Corner (a change); round 1 confirms. FSYNC epochs are
  // rounds up to the last change plus the confirming epoch.
  EXPECT_EQ(run.rounds, 2u);
  EXPECT_EQ(run.epochs, 2u);
}

TEST(Engine, SsyncSingletonActivatesOneRobotPerRound) {
  const StayAlgorithm algo;
  RunConfig config;
  config.scheduler = SchedulerKind::kSsync;
  config.activation = sched::ActivationKind::kSingleton;
  config.seed = 4;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 6, 4);
  const auto run = run_simulation(algo, initial, config);
  EXPECT_TRUE(run.converged);
  // Each robot needs to announce (6 rounds) then confirm (6 rounds).
  EXPECT_EQ(run.total_cycles, run.rounds);
  EXPECT_GE(run.rounds, 12u);
}

TEST(Engine, HullHistoryRecordedWhenRequested) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kRingWithCore, 32, 6);
  RunConfig config = async_config(6);
  config.record_hull_history = true;
  const auto run = run_simulation(*algo, initial, config);
  ASSERT_TRUE(run.converged);
  ASSERT_GE(run.hull_history.size(), 2u);
  // Corner census ends with everyone a corner.
  EXPECT_EQ(run.hull_history.back().corners, initial.size());
  EXPECT_EQ(run.hull_history.back().non_corners, 0u);
  // Times are non-decreasing.
  for (std::size_t i = 1; i < run.hull_history.size(); ++i) {
    EXPECT_LE(run.hull_history[i - 1].time, run.hull_history[i].time);
  }
}

TEST(Engine, LightsSeenAuditsPalette) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 32, 7);
  const auto run = run_simulation(*algo, initial, async_config(7));
  ASSERT_TRUE(run.converged);
  EXPECT_TRUE(run.lights_seen[static_cast<std::size_t>(Light::kOff)]);
  EXPECT_TRUE(run.lights_seen[static_cast<std::size_t>(Light::kCorner)]);
  EXPECT_LE(run.distinct_lights_used(), model::kLightCount);
  EXPECT_GE(run.distinct_lights_used(), 2u);
}

TEST(Engine, FixedFramesAlsoConverge) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 24, 8);
  RunConfig config = async_config(8);
  config.refresh_frames_each_look = false;
  const auto run = run_simulation(*algo, initial, config);
  EXPECT_TRUE(run.converged);
}

TEST(Engine, NonRigidMovesStopShortButProgress) {
  // Under the non-rigid adversary every recorded move is a PREFIX of the
  // intended one, at least nonrigid_min_progress long (or the full hop).
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 24, 9);
  RunConfig config = async_config(9);
  config.rigid_moves = false;
  config.nonrigid_min_progress = 0.5;
  const auto run = run_simulation(*algo, initial, config);
  EXPECT_TRUE(run.converged);
  std::size_t stopped_short = 0;
  for (const auto& m : run.moves) {
    // Zero-length moves are filtered by the engine.
    EXPECT_GT(m.length(), 0.0);
    if (m.length() < 0.5 - 1e-12) {
      // Short hops are allowed only when the INTENT itself was short; we
      // cannot see intents here, but a hop shorter than the floor must at
      // least be rare (line escapes and tiny retries).
      ++stopped_short;
    }
  }
  EXPECT_LT(stopped_short, run.moves.size() / 2);
  // Non-rigid runs need more moves than robots (retries happen).
  EXPECT_GT(run.total_moves, 24u);
}

TEST(Engine, NonRigidStillSolvesCompleteVisibility) {
  const auto algo = core::make_algorithm("async-log");
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 32, seed);
    RunConfig config = async_config(seed);
    config.rigid_moves = false;
    const auto run = run_simulation(*algo, initial, config);
    EXPECT_TRUE(run.converged) << seed;
    EXPECT_TRUE(verify_complete_visibility(run.final_positions).complete()) << seed;
    const auto report =
        check_collisions(run.initial_positions, run.moves, run.final_time);
    EXPECT_TRUE(report.hazard_free(1e-9)) << seed;
  }
}

TEST(Engine, NonRigidSyncEnginesConvergeToo) {
  const auto algo = core::make_algorithm("ssync-parallel");
  RunConfig config;
  config.scheduler = SchedulerKind::kFsync;
  config.seed = 5;
  config.rigid_moves = false;
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 20, 5);
  const auto run = run_simulation(*algo, initial, config);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(verify_complete_visibility(run.final_positions).complete());
}

TEST(Engine, SchedulerNamesRoundTrip) {
  EXPECT_EQ(to_string(SchedulerKind::kFsync), "FSYNC");
  EXPECT_EQ(to_string(SchedulerKind::kSsync), "SSYNC");
  EXPECT_EQ(to_string(SchedulerKind::kAsync), "ASYNC");
}

}  // namespace
}  // namespace lumen::sim
