// Scheduler-substrate tests: adversary determinism and ranges, activation
// policy contracts, and the epoch timeline reconstruction.
#include "sched/activation.hpp"
#include "sched/adversary.hpp"
#include "sched/epoch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/prng.hpp"

namespace lumen::sched {
namespace {

class AdversaryContractTest : public ::testing::TestWithParam<AdversaryKind> {};

TEST_P(AdversaryContractTest, TimingsArePositiveAndFinite) {
  const auto adversary = make_adversary(GetParam());
  util::Prng rng{42};
  for (std::size_t robot = 0; robot < 8; ++robot) {
    for (std::uint64_t cycle = 0; cycle < 500; ++cycle) {
      const PhaseTiming t = adversary->sample(robot, cycle, rng);
      EXPECT_GT(t.wait, 0.0);
      EXPECT_GT(t.compute, 0.0);
      EXPECT_GT(t.move_duration, 0.0);
      EXPECT_TRUE(std::isfinite(t.wait + t.compute + t.move_duration));
    }
  }
}

TEST_P(AdversaryContractTest, DeterministicGivenSameStream) {
  const auto adversary = make_adversary(GetParam());
  util::Prng rng1{7}, rng2{7};
  for (int i = 0; i < 100; ++i) {
    const PhaseTiming a = adversary->sample(3, static_cast<std::uint64_t>(i), rng1);
    const PhaseTiming b = adversary->sample(3, static_cast<std::uint64_t>(i), rng2);
    EXPECT_EQ(a.wait, b.wait);
    EXPECT_EQ(a.compute, b.compute);
    EXPECT_EQ(a.move_duration, b.move_duration);
  }
}

TEST_P(AdversaryContractTest, KindRoundTrips) {
  const auto adversary = make_adversary(GetParam());
  EXPECT_EQ(adversary->kind(), GetParam());
  EXPECT_NE(to_string(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(AllAdversaries, AdversaryContractTest,
                         ::testing::Values(AdversaryKind::kUniform,
                                           AdversaryKind::kBursty,
                                           AdversaryKind::kStallOne,
                                           AdversaryKind::kLockstep));

TEST(StallOneAdversary, RobotZeroIsSlower) {
  const auto adversary = make_adversary(AdversaryKind::kStallOne);
  util::Prng rng{1};
  double slow_sum = 0.0, fast_sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    slow_sum += adversary->sample(0, 0, rng).wait;
    fast_sum += adversary->sample(1, 0, rng).wait;
  }
  EXPECT_GT(slow_sum, 5.0 * fast_sum);
}

class ActivationContractTest : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(ActivationContractTest, NonEmptySortedUniqueInRange) {
  const auto policy = make_activation(GetParam());
  util::Prng rng{9};
  for (std::uint64_t round = 0; round < 200; ++round) {
    const auto active = policy->activate(13, round, rng);
    ASSERT_FALSE(active.empty());
    for (std::size_t k = 0; k < active.size(); ++k) {
      EXPECT_LT(active[k], 13u);
      if (k > 0) {
        EXPECT_LT(active[k - 1], active[k]);
      }
    }
  }
}

TEST_P(ActivationContractTest, FairnessEveryRobotActivatedEventually) {
  const auto policy = make_activation(GetParam());
  util::Prng rng{10};
  std::set<std::size_t> seen;
  for (std::uint64_t round = 0; round < 2000 && seen.size() < 9; ++round) {
    for (const auto r : policy->activate(9, round, rng)) seen.insert(r);
  }
  EXPECT_EQ(seen.size(), 9u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ActivationContractTest,
                         ::testing::Values(ActivationKind::kAll,
                                           ActivationKind::kRandomHalf,
                                           ActivationKind::kSingleton,
                                           ActivationKind::kRandomSingle));

TEST(ActivationPolicies, AllActivatesEveryone) {
  const auto policy = make_activation(ActivationKind::kAll);
  util::Prng rng{1};
  EXPECT_EQ(policy->activate(5, 0, rng).size(), 5u);
}

TEST(ActivationPolicies, SingletonIsRoundRobin) {
  const auto policy = make_activation(ActivationKind::kSingleton);
  util::Prng rng{1};
  for (std::uint64_t round = 0; round < 10; ++round) {
    const auto active = policy->activate(4, round, rng);
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0], round % 4);
  }
}

TEST(EpochTimeline, FsyncLikeRoundsCountExactly) {
  // 3 robots, each completes a cycle in every unit interval.
  EpochTimeline tl(3);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t r = 0; r < 3; ++r) {
      tl.add_cycle({r, static_cast<double>(round), static_cast<double>(round) + 1});
    }
  }
  EXPECT_EQ(tl.count_epochs(5.0), 5u);
  EXPECT_EQ(tl.count_epochs(2.5), 2u);
  EXPECT_EQ(tl.cycle_count(), 15u);
}

TEST(EpochTimeline, SlowRobotStretchesEpochs) {
  // Robot 0 cycles at 10x the period of robot 1: epochs follow robot 0.
  EpochTimeline tl(2);
  for (int i = 0; i < 4; ++i) {
    tl.add_cycle({0, 10.0 * i, 10.0 * (i + 1)});
  }
  for (int i = 0; i < 40; ++i) {
    tl.add_cycle({1, 1.0 * i, 1.0 * (i + 1)});
  }
  EXPECT_EQ(tl.count_epochs(40.0), 4u);
}

TEST(EpochTimeline, EpochRequiresCycleStartedInside) {
  // One robot's only cycle spans [0, 8]; the other cycles fast. The first
  // epoch ends at 8; afterwards no further epoch can complete.
  EpochTimeline tl(2);
  tl.add_cycle({0, 0.0, 8.0});
  for (int i = 0; i < 10; ++i) {
    tl.add_cycle({1, 1.0 * i, 1.0 * (i + 1)});
  }
  const auto bounds = tl.epoch_boundaries(10.0);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(bounds[0], 8.0);
}

TEST(EpochTimeline, RejectsOutOfRangeAndOutOfOrder) {
  EpochTimeline tl(2);
  EXPECT_THROW(tl.add_cycle({5, 0.0, 1.0}), std::out_of_range);
  tl.add_cycle({0, 5.0, 6.0});
  EXPECT_THROW(tl.add_cycle({0, 4.0, 4.5}), std::invalid_argument);
}

TEST(EpochTimeline, EmptyTimelineHasNoEpochs) {
  EpochTimeline tl(2);
  EXPECT_EQ(tl.count_epochs(100.0), 0u);
  EpochTimeline none(0);
  EXPECT_EQ(none.count_epochs(100.0), 0u);
}

}  // namespace
}  // namespace lumen::sched
