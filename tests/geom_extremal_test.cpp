// Closest-pair and rotating-calipers tests, validated against brute force.
#include "geom/extremal.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "util/prng.hpp"

namespace lumen::geom {
namespace {

PointPair brute_closest(std::span<const Vec2> pts) {
  PointPair best{0, 0, std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = distance(pts[i], pts[j]);
      if (d < best.distance) best = {i, j, d};
    }
  }
  return best;
}

PointPair brute_farthest(std::span<const Vec2> pts) {
  PointPair best{0, 0, 0.0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = distance(pts[i], pts[j]);
      if (d > best.distance) best = {i, j, d};
    }
  }
  return best;
}

TEST(ClosestPair, HandConstructed) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {10.5, 0}, {5, 8}};
  const auto p = closest_pair(pts);
  EXPECT_EQ(p.first, 1u);
  EXPECT_EQ(p.second, 2u);
  EXPECT_DOUBLE_EQ(p.distance, 0.5);
}

TEST(ClosestPair, PairAndTriple) {
  const std::vector<Vec2> two = {{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(closest_pair(two).distance, 5.0);
  const std::vector<Vec2> one = {{0, 0}};
  EXPECT_THROW((void)closest_pair(one), std::invalid_argument);
}

TEST(ClosestPair, DuplicatePointsGiveZero) {
  const std::vector<Vec2> pts = {{1, 1}, {5, 5}, {1, 1}};
  EXPECT_DOUBLE_EQ(closest_pair(pts).distance, 0.0);
}

TEST(ClosestPair, MatchesBruteForceOnRandom) {
  util::Prng rng{41};
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 2 + rng.next_below(200);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    EXPECT_DOUBLE_EQ(closest_pair(pts).distance, brute_closest(pts).distance)
        << "iter " << iter;
  }
}

TEST(ClosestPair, VerticalAndHorizontalLines) {
  std::vector<Vec2> vertical;
  for (int i = 0; i < 50; ++i) vertical.push_back({0.0, i * 1.5});
  EXPECT_DOUBLE_EQ(closest_pair(vertical).distance, 1.5);
  std::vector<Vec2> horizontal;
  for (int i = 0; i < 50; ++i) horizontal.push_back({i * 2.5, 0.0});
  EXPECT_DOUBLE_EQ(closest_pair(horizontal).distance, 2.5);
}

TEST(FarthestPair, HandConstructed) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}, {10, 0}, {5, 2}};
  const auto p = farthest_pair(pts);
  EXPECT_EQ(p.first, 0u);
  EXPECT_EQ(p.second, 2u);
  EXPECT_DOUBLE_EQ(p.distance, 10.0);
}

TEST(FarthestPair, MatchesBruteForceOnRandom) {
  util::Prng rng{43};
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Vec2> pts;
    const std::size_t n = 2 + rng.next_below(150);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    EXPECT_NEAR(farthest_pair(pts).distance, brute_farthest(pts).distance,
                1e-9)
        << "iter " << iter;
  }
}

TEST(FarthestPair, CollinearAndCoincident) {
  const std::vector<Vec2> line = {{0, 0}, {5, 5}, {9, 9}, {2, 2}};
  EXPECT_NEAR(farthest_pair(line).distance, distance({0, 0}, {9, 9}), 1e-12);
  const std::vector<Vec2> same = {{3, 3}, {3, 3}, {3, 3}};
  EXPECT_DOUBLE_EQ(farthest_pair(same).distance, 0.0);
}

TEST(FarthestPair, GeneratorFamiliesSanity) {
  // The diameter of the dense-diameter family is the anchor separation.
  const auto pts = gen::generate(gen::ConfigFamily::kDenseDiameter, 40, 3);
  EXPECT_NEAR(farthest_pair(pts).distance, 200.0, 1e-9);
}

}  // namespace
}  // namespace lumen::geom
