// Convex hull tests: known shapes, degeneracies, and randomized invariants
// checked against first principles (every point inside, every hull vertex
// strictly extreme).
#include "geom/hull.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/predicates.hpp"
#include "util/prng.hpp"

namespace lumen::geom {
namespace {

std::vector<Vec2> hull_points_of(std::span<const Vec2> pts) {
  std::vector<Vec2> out;
  for (const auto i : convex_hull_indices(pts)) out.push_back(pts[i]);
  return out;
}

TEST(ConvexHull, EmptySingleAndPair) {
  EXPECT_TRUE(convex_hull_indices({}).empty());
  const std::vector<Vec2> one = {{1, 2}};
  EXPECT_EQ(convex_hull_indices(one), (std::vector<std::size_t>{0}));
  const std::vector<Vec2> two = {{1, 2}, {0, 0}};
  const auto h2 = convex_hull_indices(two);
  EXPECT_EQ(h2.size(), 2u);
  EXPECT_EQ(two[h2[0]], (Vec2{0, 0}));  // Lexicographic start.
}

TEST(ConvexHull, SquareWithMidpointsAndCenter) {
  // Strict hull excludes edge midpoints and the center.
  const std::vector<Vec2> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2},
                                 {1, 0}, {2, 1}, {1, 2}, {0, 1}, {1, 1}};
  const auto hull = convex_hull_indices(pts);
  ASSERT_EQ(hull.size(), 4u);
  std::vector<Vec2> hp = hull_points_of(pts);
  // CCW from lexicographic min (0,0).
  EXPECT_EQ(hp[0], (Vec2{0, 0}));
  EXPECT_EQ(hp[1], (Vec2{2, 0}));
  EXPECT_EQ(hp[2], (Vec2{2, 2}));
  EXPECT_EQ(hp[3], (Vec2{0, 2}));
}

TEST(ConvexHull, CcwOrientation) {
  const std::vector<Vec2> pts = {{0, 0}, {4, 1}, {2, 5}, {1, 1}, {3, 2}};
  const auto hp = hull_points_of(pts);
  ASSERT_GE(hp.size(), 3u);
  for (std::size_t i = 0; i < hp.size(); ++i) {
    EXPECT_GT(orient2d(hp[i], hp[(i + 1) % hp.size()], hp[(i + 2) % hp.size()]), 0);
  }
}

TEST(ConvexHull, DuplicatesCollapse) {
  const std::vector<Vec2> pts = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}, {0, 1}};
  EXPECT_EQ(convex_hull_indices(pts).size(), 3u);
}

TEST(ConvexHull, CollinearDegeneratesToExtremes) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {1.5, 1.5}};
  const auto hull = convex_hull_indices(pts);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_EQ(pts[hull[0]], (Vec2{0, 0}));
  EXPECT_EQ(pts[hull[1]], (Vec2{3, 3}));
}

TEST(ConvexHull, RandomizedInvariants) {
  util::Prng rng{5};
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 3 + rng.next_below(60);
    std::vector<Vec2> pts;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
    }
    const auto hull = convex_hull_indices(pts);
    const auto hp = hull_points_of(pts);
    // Every input point is inside-or-on the hull.
    for (const auto& p : pts) {
      EXPECT_NE(classify_against_hull(hp, p), HullPosition::kOutside);
    }
    // Every hull vertex is a strict corner (left turns all around).
    if (hp.size() >= 3) {
      for (std::size_t i = 0; i < hp.size(); ++i) {
        EXPECT_GT(orient2d(hp[i], hp[(i + 1) % hp.size()], hp[(i + 2) % hp.size()]), 0);
      }
    }
  }
}

TEST(ClassifyAgainstHull, AllPositions) {
  const std::vector<Vec2> hull = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_EQ(classify_against_hull(hull, {0, 0}), HullPosition::kVertex);
  EXPECT_EQ(classify_against_hull(hull, {2, 0}), HullPosition::kEdge);
  EXPECT_EQ(classify_against_hull(hull, {2, 2}), HullPosition::kInterior);
  EXPECT_EQ(classify_against_hull(hull, {5, 2}), HullPosition::kOutside);
  EXPECT_EQ(classify_against_hull(hull, {-1e-12, 2}), HullPosition::kOutside);
}

TEST(ClassifyAgainstHull, DegenerateHulls) {
  const std::vector<Vec2> seg = {{0, 0}, {4, 0}};
  EXPECT_EQ(classify_against_hull(seg, {0, 0}), HullPosition::kVertex);
  EXPECT_EQ(classify_against_hull(seg, {2, 0}), HullPosition::kEdge);
  EXPECT_EQ(classify_against_hull(seg, {5, 0}), HullPosition::kOutside);
  EXPECT_EQ(classify_against_hull(seg, {2, 1}), HullPosition::kOutside);
  const std::vector<Vec2> pt = {{1, 1}};
  EXPECT_EQ(classify_against_hull(pt, {1, 1}), HullPosition::kVertex);
  EXPECT_EQ(classify_against_hull(pt, {1, 2}), HullPosition::kOutside);
}

TEST(StrictConvexPosition, Recognizers) {
  EXPECT_TRUE(points_in_strictly_convex_position(std::vector<Vec2>{}));
  EXPECT_TRUE(points_in_strictly_convex_position(std::vector<Vec2>{{0, 0}}));
  EXPECT_TRUE(points_in_strictly_convex_position(std::vector<Vec2>{{0, 0}, {1, 0}}));
  EXPECT_TRUE(points_in_strictly_convex_position(
      std::vector<Vec2>{{0, 0}, {4, 0}, {4, 4}, {0, 4}}));
  // Midpoint of an edge breaks strictness.
  EXPECT_FALSE(points_in_strictly_convex_position(
      std::vector<Vec2>{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}}));
  // Interior point breaks it.
  EXPECT_FALSE(points_in_strictly_convex_position(
      std::vector<Vec2>{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}}));
  // Three collinear points are not strictly convex.
  EXPECT_FALSE(points_in_strictly_convex_position(
      std::vector<Vec2>{{0, 0}, {1, 1}, {2, 2}}));
  // Duplicates are never in convex position.
  EXPECT_FALSE(points_in_strictly_convex_position(
      std::vector<Vec2>{{0, 0}, {0, 0}, {1, 0}, {0, 1}}));
}

TEST(AllCollinear, Cases) {
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{}));
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{{1, 1}}));
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{{1, 1}, {2, 2}}));
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{{0, 0}, {1, 2}, {2, 4}, {-3, -6}}));
  EXPECT_FALSE(all_collinear(std::vector<Vec2>{{0, 0}, {1, 2}, {2, 4.0001}}));
  // Coincident anchor handling.
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{{5, 5}, {5, 5}, {5, 5}}));
  EXPECT_TRUE(all_collinear(std::vector<Vec2>{{5, 5}, {5, 5}, {7, 7}}));
}

TEST(ConvexHull, LexicographicStartVertex) {
  util::Prng rng{11};
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 20; ++i) {
      pts.push_back({rng.uniform(-9, 9), rng.uniform(-9, 9)});
    }
    const auto hull = convex_hull_indices(pts);
    ASSERT_FALSE(hull.empty());
    const Vec2 first = pts[hull[0]];
    for (const auto i : hull) {
      EXPECT_LE(first, pts[i]);
    }
  }
}

}  // namespace
}  // namespace lumen::geom
