// Statistics tests: Welford accumulator vs direct formulas, percentile
// conventions, least-squares fits, and the growth-model classifier that
// decides the headline O(log N)-vs-O(N) verdict.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/prng.hpp"

namespace lumen::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MatchesDirectFormulas) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Prng rng{3};
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Percentile, UnsortedInputAndEdgeCases) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 9.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x - 2.0);
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0}).r_squared, 0.0);
  // Constant x cannot be fit.
  const std::vector<double> xs = {2, 2, 2};
  const std::vector<double> ys = {1, 2, 3};
  const auto fit = fit_linear(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.r_squared, 0.0);
}

TEST(LinearFit, NoisyLineHighR2) {
  Prng rng{8};
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(0.5 * x + 10.0 + rng.normal());
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(ClassifyGrowth, DetectsLogarithmic) {
  std::vector<double> ns, ts;
  Prng rng{4};
  for (double n = 8; n <= 4096; n *= 2) {
    ns.push_back(n);
    ts.push_back(5.0 * std::log2(n) + 2.0 + 0.2 * rng.normal());
  }
  const auto v = classify_growth(ns, ts);
  EXPECT_EQ(v.winner, GrowthModel::kLogarithmic);
  EXPECT_GT(v.log_fit.r_squared, 0.99);
  EXPECT_EQ(to_string(v.winner), "O(log N)");
}

TEST(ClassifyGrowth, DetectsLinear) {
  std::vector<double> ns, ts;
  Prng rng{4};
  for (double n = 8; n <= 4096; n *= 2) {
    ns.push_back(n);
    ts.push_back(0.9 * n + 3.0 + 0.5 * rng.normal());
  }
  const auto v = classify_growth(ns, ts);
  EXPECT_EQ(v.winner, GrowthModel::kLinear);
  EXPECT_GT(v.lin_fit.r_squared, 0.999);
  EXPECT_EQ(to_string(v.winner), "O(N)");
}

TEST(ClassifyGrowth, ConstantSeriesIsTie) {
  const std::vector<double> ns = {8, 16, 32, 64};
  const std::vector<double> ts = {5, 5, 5, 5};
  const auto v = classify_growth(ns, ts);
  EXPECT_EQ(v.winner, GrowthModel::kTie);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
  EXPECT_NEAR(s.p95, 9.55, 1e-12);
  const auto empty = summarize(std::vector<double>{});
  EXPECT_EQ(empty.count, 0u);
}

}  // namespace
}  // namespace lumen::util
