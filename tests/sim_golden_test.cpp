// Golden-seed regression pinning for run_simulation.
//
// Each scenario fixes (algorithm, family, n, seed, config) and pins a digest
// of the ENTIRE RunResult — positions, lights, move log, hull history, epoch
// and cycle counts, all doubles compared bit-for-bit. The digests were
// captured from the pre-ExecutionCore engines; the refactored engines must
// reproduce every execution exactly. The scenario set deliberately covers
// the quiescence-detection corners: light-only final state changes,
// non-rigid moves that stop short, SSYNC partial activation (singleton and
// random-half), and all three schedulers.
//
// Recapture (only legitimate after an INTENDED semantics change):
//   g++ -std=c++20 -DGOLDEN_DUMP -Isrc tests/sim_golden_test.cpp <libs> &&
//   ./a.out
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "model/algorithm.hpp"
#include "sim/run.hpp"

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#ifdef GOLDEN_DUMP
#include <cstdio>
#else
#include <gtest/gtest.h>
#endif

namespace lumen::sim {
namespace {

using geom::Vec2;
using model::Action;
using model::Light;

// --- Probe algorithms covering quiescence corners -------------------------

/// Never moves, always shows Corner: the last state change of every robot is
/// the one light flip Off -> Corner.
class StayProbe final : public model::Algorithm {
 public:
  Action compute(const model::Snapshot&) const override {
    return Action::stay(Light::kCorner);
  }
  std::string_view name() const noexcept override { return "probe-stay"; }
  std::span<const Light> palette() const noexcept override {
    return model::kAllLights;
  }
};

/// Moves exactly once, then performs a LIGHT-ONLY change, then is null:
/// Off -> (move, Transit) -> (stay, Corner) -> null. The run's last state
/// change is the light-only Transit -> Corner commit, which exercises the
/// "light change alone must reset quiescence" path.
class MoveThenRecolorProbe final : public model::Algorithm {
 public:
  Action compute(const model::Snapshot& snap) const override {
    if (snap.self_light == Light::kOff) {
      return Action::move_to(Vec2{1.0, 0.0}, Light::kTransit);
    }
    if (snap.self_light == Light::kTransit) {
      return Action::stay(Light::kCorner);  // Light-only change.
    }
    return Action::stay(Light::kCorner);
  }
  std::string_view name() const noexcept override { return "probe-move-recolor"; }
  std::span<const Light> palette() const noexcept override {
    return model::kAllLights;
  }
};

// --- RunResult digest ------------------------------------------------------

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t bits(double d) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t run_digest(const RunResult& r) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.converged ? 1 : 0);
  h = mix(h, bits(r.final_time));
  h = mix(h, r.epochs);
  h = mix(h, r.rounds);
  h = mix(h, r.total_cycles);
  h = mix(h, r.total_moves);
  h = mix(h, bits(r.total_distance));
  for (const auto& p : r.initial_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const auto& p : r.final_positions) {
    h = mix(h, bits(p.x));
    h = mix(h, bits(p.y));
  }
  for (const Light l : r.final_lights) {
    h = mix(h, static_cast<std::uint64_t>(l));
  }
  for (const auto& m : r.moves) {
    h = mix(h, m.robot);
    h = mix(h, bits(m.t0));
    h = mix(h, bits(m.t1));
    h = mix(h, bits(m.from.x));
    h = mix(h, bits(m.from.y));
    h = mix(h, bits(m.to.x));
    h = mix(h, bits(m.to.y));
  }
  for (const auto& s : r.hull_history) {
    h = mix(h, bits(s.time));
    h = mix(h, s.corners);
    h = mix(h, s.non_corners);
  }
  for (const bool b : r.lights_seen) h = mix(h, b ? 1 : 0);
  return h;
}

// --- Scenario table --------------------------------------------------------

struct Scenario {
  const char* label;
  const char* algorithm;  ///< Registry name, or "probe-stay"/"probe-move-recolor".
  SchedulerKind scheduler;
  sched::ActivationKind activation;
  sched::AdversaryKind adversary;
  gen::ConfigFamily family;
  std::size_t n;
  std::uint64_t seed;
  bool rigid;
  bool refresh_frames;
  bool hull_history;
  bool expect_converged;
  std::uint64_t expected_digest;
};

constexpr auto kDisk = gen::ConfigFamily::kUniformDisk;
constexpr auto kRing = gen::ConfigFamily::kRingWithCore;
constexpr auto kLattice = gen::ConfigFamily::kLattice;
constexpr auto kCollinear = gen::ConfigFamily::kCollinear;

// Digests captured from the seed engines (commit e8248a4); every entry was
// re-verified identical across the ExecutionCore refactor.
const Scenario kScenarios[] = {
    {"async-default", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     24, 9, true, true, false, true, 0x72af1c94b18dca76ULL},
    {"async-nonrigid-stopshort", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     24, 11, false, true, false, true, 0x72bee31a88d4f0e9ULL},
    {"async-fixed-frames-bursty", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kBursty, kDisk,
     16, 3, true, false, false, true, 0x0307521be868400fULL},
    {"async-hull-history", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kRing,
     32, 6, true, true, true, true, 0xf8449949f9b24903ULL},
    {"async-stallone", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kStallOne, kDisk,
     16, 8, true, true, false, true, 0xe46f0fa4561f9308ULL},
    {"async-lockstep", "async-log", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kLockstep, kDisk,
     16, 8, true, true, false, true, 0x069179f79cd8ce49ULL},
    {"async-seq-baseline", "seq-baseline", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     12, 4, true, true, false, true, 0xf529ce1e93aa23e5ULL},
    {"ssync-randomhalf", "ssync-parallel", SchedulerKind::kSsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     20, 5, true, true, false, true, 0x26a963ee42f0017cULL},
    {"ssync-singleton-partial", "ssync-parallel", SchedulerKind::kSsync,
     sched::ActivationKind::kSingleton, sched::AdversaryKind::kUniform, kDisk,
     12, 2, true, true, false, true, 0x7de91e7e3e9820faULL},
    {"fsync-nonrigid", "ssync-parallel", SchedulerKind::kFsync,
     sched::ActivationKind::kAll, sched::AdversaryKind::kUniform, kDisk, 20, 5,
     false, true, false, true, 0xfd59f48fae3cf246ULL},
    {"async-light-only-final-change", "probe-move-recolor",
     SchedulerKind::kAsync, sched::ActivationKind::kRandomHalf,
     sched::AdversaryKind::kUniform, kDisk, 8, 13, true, true, false, true,
     0xfce4e5990005ef48ULL},
    {"ssync-singleton-light-only", "probe-move-recolor", SchedulerKind::kSsync,
     sched::ActivationKind::kSingleton, sched::AdversaryKind::kUniform, kDisk,
     6, 3, true, true, false, true, 0x3bfa1f5f46703c4dULL},
    {"async-stay-nonrigid", "probe-stay", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     10, 7, false, true, false, true, 0xe85142dab6edb307ULL},
    // Plugin algorithms (grid motion model / mutual-visibility predicate);
    // digests captured at the plugin-framework commit via GOLDEN_DUMP.
    {"grid-cv-lattice-async", "grid-cv", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform,
     kLattice, 16, 21, true, true, false, true, 0x75f6aba667366f17ULL},
    {"grid-cv-lattice-fsync", "grid-cv", SchedulerKind::kFsync,
     sched::ActivationKind::kAll, sched::AdversaryKind::kUniform, kLattice, 12,
     9, true, true, false, true, 0x7b3056d45912663aULL},
    {"mutual-vis-collinear-async", "mutual-vis", SchedulerKind::kAsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform,
     kCollinear, 12, 5, true, true, false, true, 0x0e039c33356fe009ULL},
    {"mutual-vis-ssync", "mutual-vis", SchedulerKind::kSsync,
     sched::ActivationKind::kRandomHalf, sched::AdversaryKind::kUniform, kDisk,
     16, 7, true, true, false, true, 0xddc94f86894033cfULL},
};

RunResult run_scenario(const Scenario& s) {
  RunConfig config;
  config.scheduler = s.scheduler;
  config.activation = s.activation;
  config.adversary = s.adversary;
  config.seed = s.seed;
  config.rigid_moves = s.rigid;
  config.refresh_frames_each_look = s.refresh_frames;
  config.record_hull_history = s.hull_history;
  const auto initial = gen::generate(s.family, s.n, s.seed);
  const std::string_view name{s.algorithm};
  if (name == "probe-stay") {
    const StayProbe probe;
    return run_simulation(probe, initial, config);
  }
  if (name == "probe-move-recolor") {
    const MoveThenRecolorProbe probe;
    return run_simulation(probe, initial, config);
  }
  const auto algo = core::make_algorithm(name);
  return run_simulation(*algo, initial, config);
}

#ifndef GOLDEN_DUMP

TEST(GoldenSeeds, RunResultsAreBitIdenticalAcrossSchedulers) {
  for (const Scenario& s : kScenarios) {
    const RunResult run = run_scenario(s);
    EXPECT_EQ(run.converged, s.expect_converged) << s.label;
    EXPECT_EQ(run_digest(run), s.expected_digest) << s.label;
  }
}

TEST(GoldenSeeds, DigestIsSensitiveToTheMoveLog) {
  // Guard against a digest that silently ignores fields: perturbing one move
  // endpoint must change it.
  RunResult run = run_scenario(kScenarios[0]);
  ASSERT_FALSE(run.moves.empty());
  const std::uint64_t before = run_digest(run);
  run.moves.back().to.x += 1e-9;
  EXPECT_NE(run_digest(run), before);
}

#else  // GOLDEN_DUMP

#endif

}  // namespace
}  // namespace lumen::sim

#ifdef GOLDEN_DUMP
int main() {
  using namespace lumen::sim;
  for (const Scenario& s : kScenarios) {
    const RunResult run = run_scenario(s);
    std::printf("%-32s converged=%d digest=0x%016llxULL\n", s.label,
                run.converged ? 1 : 0,
                static_cast<unsigned long long>(run_digest(run)));
  }
  return 0;
}
#endif
