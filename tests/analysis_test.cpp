// Campaign-runner tests: determinism under parallel execution, metric
// correctness, and the N-sweep plumbing the benches are built on.
#include "analysis/campaign.hpp"

#include <gtest/gtest.h>

#include <map>

namespace lumen::analysis {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.algorithm = "async-log";
  spec.family = gen::ConfigFamily::kUniformDisk;
  spec.n = 16;
  spec.runs = 6;
  spec.seed_base = 100;
  return spec;
}

TEST(Campaign, AllRunsConvergeAndVerify) {
  const auto result = run_campaign(small_spec());
  ASSERT_EQ(result.runs.size(), 6u);
  EXPECT_EQ(result.converged_count(), 6u);
  EXPECT_EQ(result.visibility_ok_count(), 6u);
  EXPECT_EQ(result.collision_free_count(), 6u);
  EXPECT_LE(result.max_colors(), model::kLightCount);
  const auto epochs = result.epochs();
  EXPECT_EQ(epochs.count, 6u);
  EXPECT_GT(epochs.mean, 0.0);
}

TEST(Campaign, SeedsAreSequentialFromBase) {
  const auto result = run_campaign(small_spec());
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    EXPECT_EQ(result.runs[i].seed, 100 + i);
  }
}

// Exact equality on every field — doubles included, so "identical" means
// bit-identical, which is what the sharding contract promises.
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.visibility_ok, b.visibility_ok);
  EXPECT_EQ(a.collision_free, b.collision_free);
  EXPECT_EQ(a.min_observed_separation, b.min_observed_separation);
  EXPECT_EQ(a.path_crossings, b.path_crossings);
  EXPECT_EQ(a.position_collisions, b.position_collisions);
}

TEST(Campaign, DeterministicAcrossPoolSizes) {
  util::ThreadPool serial{1};
  util::ThreadPool wide{8};
  const auto a = run_campaign(small_spec(), &serial);
  const auto b = run_campaign(small_spec(), &wide);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a.runs[i], b.runs[i]);
  }
}

TEST(Campaign, ShardsReassembleToUnshardedResult) {
  CampaignSpec spec = small_spec();
  spec.runs = 7;  // Deliberately not divisible by the shard count.
  const auto whole = run_campaign(spec);

  std::map<std::uint64_t, RunMetrics> merged;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    CampaignSpec part = spec;
    part.shard_index = shard;
    part.shard_count = 3;
    const auto result = run_campaign(part);
    for (const auto& m : result.runs) {
      const bool inserted = merged.emplace(m.seed, m).second;
      EXPECT_TRUE(inserted) << "seed " << m.seed << " ran in two shards";
    }
  }

  ASSERT_EQ(merged.size(), whole.runs.size());
  for (const auto& m : whole.runs) {
    SCOPED_TRACE(m.seed);
    ASSERT_TRUE(merged.count(m.seed));
    expect_identical(m, merged.at(m.seed));
  }
}

TEST(Campaign, ShardBeyondRunCountIsEmpty) {
  CampaignSpec spec = small_spec();
  spec.runs = 2;
  spec.shard_index = 2;
  spec.shard_count = 5;
  EXPECT_TRUE(run_campaign(spec).runs.empty());
}

TEST(Campaign, CollisionAuditCanBeDisabled) {
  CampaignSpec spec = small_spec();
  spec.audit_collisions = false;
  const auto result = run_campaign(spec);
  for (const auto& m : result.runs) {
    EXPECT_TRUE(m.collision_free);  // Default, not audited.
    EXPECT_EQ(m.min_observed_separation, 0.0);
  }
}

TEST(Campaign, UnknownAlgorithmRecordsSpecInvalidError) {
  CampaignSpec spec = small_spec();
  spec.algorithm = "bogus";
  const auto result = run_campaign(spec);
  EXPECT_TRUE(result.runs.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].kind, CampaignErrorKind::kSpecInvalid);
  EXPECT_NE(result.errors[0].detail.find("algorithm"), std::string::npos);
  EXPECT_FALSE(result.complete());
}

TEST(Campaign, SweepProducesOnePointPerN) {
  const std::vector<std::size_t> ns = {8, 16, 32};
  CampaignSpec spec = small_spec();
  spec.runs = 3;
  const auto points = sweep_n(spec, ns);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_EQ(points[i].n, ns[i]);
    EXPECT_EQ(points[i].result.spec.n, ns[i]);
    EXPECT_EQ(points[i].result.converged_count(), 3u);
  }
  // Epochs grow with N in expectation.
  EXPECT_LE(points[0].result.epochs().mean, points[2].result.epochs().mean * 1.5);
}

TEST(Campaign, BaselineTakesMoreEpochsThanAsyncLog) {
  CampaignSpec fast = small_spec();
  fast.n = 32;
  CampaignSpec slow = fast;
  slow.algorithm = "seq-baseline";
  const auto fast_result = run_campaign(fast);
  const auto slow_result = run_campaign(slow);
  ASSERT_GT(fast_result.epochs().count, 0u);
  ASSERT_GT(slow_result.epochs().count, 0u);
  EXPECT_GT(slow_result.epochs().mean, fast_result.epochs().mean);
}

}  // namespace
}  // namespace lumen::analysis
