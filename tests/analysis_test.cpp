// Campaign-runner tests: determinism under parallel execution, metric
// correctness, and the N-sweep plumbing the benches are built on.
#include "analysis/campaign.hpp"

#include <gtest/gtest.h>

namespace lumen::analysis {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.algorithm = "async-log";
  spec.family = gen::ConfigFamily::kUniformDisk;
  spec.n = 16;
  spec.runs = 6;
  spec.seed_base = 100;
  return spec;
}

TEST(Campaign, AllRunsConvergeAndVerify) {
  const auto result = run_campaign(small_spec());
  ASSERT_EQ(result.runs.size(), 6u);
  EXPECT_EQ(result.converged_count(), 6u);
  EXPECT_EQ(result.visibility_ok_count(), 6u);
  EXPECT_EQ(result.collision_free_count(), 6u);
  EXPECT_LE(result.max_colors(), model::kLightCount);
  const auto epochs = result.epochs();
  EXPECT_EQ(epochs.count, 6u);
  EXPECT_GT(epochs.mean, 0.0);
}

TEST(Campaign, SeedsAreSequentialFromBase) {
  const auto result = run_campaign(small_spec());
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    EXPECT_EQ(result.runs[i].seed, 100 + i);
  }
}

TEST(Campaign, DeterministicAcrossPoolSizes) {
  util::ThreadPool serial{1};
  util::ThreadPool wide{8};
  const auto a = run_campaign(small_spec(), &serial);
  const auto b = run_campaign(small_spec(), &wide);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].epochs, b.runs[i].epochs) << i;
    EXPECT_EQ(a.runs[i].cycles, b.runs[i].cycles) << i;
    EXPECT_EQ(a.runs[i].moves, b.runs[i].moves) << i;
    EXPECT_EQ(a.runs[i].distance, b.runs[i].distance) << i;
  }
}

TEST(Campaign, CollisionAuditCanBeDisabled) {
  CampaignSpec spec = small_spec();
  spec.audit_collisions = false;
  const auto result = run_campaign(spec);
  for (const auto& m : result.runs) {
    EXPECT_TRUE(m.collision_free);  // Default, not audited.
    EXPECT_EQ(m.min_observed_separation, 0.0);
  }
}

TEST(Campaign, UnknownAlgorithmThrows) {
  CampaignSpec spec = small_spec();
  spec.algorithm = "bogus";
  EXPECT_THROW((void)run_campaign(spec), std::invalid_argument);
}

TEST(Campaign, SweepProducesOnePointPerN) {
  const std::vector<std::size_t> ns = {8, 16, 32};
  CampaignSpec spec = small_spec();
  spec.runs = 3;
  const auto points = sweep_n(spec, ns);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_EQ(points[i].n, ns[i]);
    EXPECT_EQ(points[i].result.spec.n, ns[i]);
    EXPECT_EQ(points[i].result.converged_count(), 3u);
  }
  // Epochs grow with N in expectation.
  EXPECT_LE(points[0].result.epochs().mean, points[2].result.epochs().mean * 1.5);
}

TEST(Campaign, BaselineTakesMoreEpochsThanAsyncLog) {
  CampaignSpec fast = small_spec();
  fast.n = 32;
  CampaignSpec slow = fast;
  slow.algorithm = "seq-baseline";
  const auto fast_result = run_campaign(fast);
  const auto slow_result = run_campaign(slow);
  ASSERT_GT(fast_result.epochs().count, 0u);
  ASSERT_GT(slow_result.epochs().count, 0u);
  EXPECT_GT(slow_result.epochs().mean, fast_result.epochs().mean);
}

}  // namespace
}  // namespace lumen::analysis
