// Vec2 value-type tests: arithmetic identities, norms, rotations,
// comparisons.
#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <sstream>

#include "util/prng.hpp"

namespace lumen::geom {
namespace {

TEST(Vec2, ArithmeticBasics) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2}));
  EXPECT_EQ(-a, (Vec2{-1, -2}));
  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, a + b);
  c -= b;
  EXPECT_EQ(c, a);
  c *= 3.0;
  EXPECT_EQ(c, (Vec2{3, 6}));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_sq(a), 25.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cross(a, a), 0.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, a), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, a), 25.0);
}

TEST(Vec2, NormalizedAndZero) {
  const Vec2 u = normalized({3, 4});
  EXPECT_NEAR(u.x, 0.6, 1e-15);
  EXPECT_NEAR(u.y, 0.8, 1e-15);
  EXPECT_EQ(normalized({0, 0}), (Vec2{0, 0}));
}

TEST(Vec2, PerpIsCcwQuarterTurn) {
  EXPECT_EQ(perp({1, 0}), (Vec2{0, 1}));
  EXPECT_EQ(perp({0, 1}), (Vec2{-1, 0}));
  util::Prng rng{3};
  for (int i = 0; i < 100; ++i) {
    const Vec2 v{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_DOUBLE_EQ(dot(v, perp(v)), 0.0);
    EXPECT_GE(cross(v, perp(v)), 0.0);  // CCW.
    EXPECT_DOUBLE_EQ(norm_sq(perp(v)), norm_sq(v));
  }
}

TEST(Vec2, LerpAndMidpoint) {
  const Vec2 a{0, 0}, b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5, 10}));
  EXPECT_EQ(midpoint(a, b), (Vec2{5, 10}));
}

TEST(Vec2, RotationPreservesNormAndComposes) {
  util::Prng rng{5};
  for (int i = 0; i < 100; ++i) {
    const Vec2 v{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const double angle = rng.uniform(0, 2 * std::numbers::pi);
    const Vec2 r = rotated(v, angle);
    EXPECT_NEAR(norm(r), norm(v), 1e-12);
    // Rotating back recovers the original.
    const Vec2 back = rotated(r, -angle);
    EXPECT_TRUE(almost_equal(back, v, 1e-9));
  }
  EXPECT_TRUE(almost_equal(rotated({1, 0}, std::numbers::pi / 2), {0, 1}, 1e-15));
}

TEST(Vec2, LexicographicOrdering) {
  EXPECT_LT((Vec2{1, 5}), (Vec2{2, 0}));
  EXPECT_LT((Vec2{1, 1}), (Vec2{1, 2}));
  EXPECT_EQ((Vec2{1, 1}), (Vec2{1, 1}));
  EXPECT_NE((Vec2{1, 1}), (Vec2{1, 1.0000001}));
}

TEST(Vec2, AlmostEqualTolerance) {
  EXPECT_TRUE(almost_equal({1, 1}, {1 + 1e-13, 1 - 1e-13}));
  EXPECT_FALSE(almost_equal({1, 1}, {1.1, 1}));
  EXPECT_TRUE(almost_equal({1, 1}, {1.05, 1}, 0.1));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace lumen::geom
