// Table/CSV emitter tests.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace lumen::util {
namespace {

TEST(FormatNumber, IntegersPrintBare) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(0.0), "0");
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(1.25, 3), "1.25");
  EXPECT_EQ(format_number(0.1, 3), "0.1");
}

TEST(FormatNumber, ScientificForExtremes) {
  // Exact integers print bare up to 1e15; everything else goes scientific
  // outside [1e-4, 1e9).
  EXPECT_EQ(format_number(1e12).find('e'), std::string::npos);
  EXPECT_NE(format_number(1.5e15).find('e'), std::string::npos);
  EXPECT_NE(format_number(1234567890.5).find('e'), std::string::npos);
  EXPECT_NE(format_number(1e-7).find('e'), std::string::npos);
}

TEST(FormatNumber, NonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::size_t{1});
  t.row().cell("b").cell(123.456, 2);
  std::ostringstream os;
  t.print(os, "My Table");
  const std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("123.46"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b,with,commas"});
  t.row().cell("plain").cell("quote\"inside");
  t.row().cell("multi\nline").cell("x");
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"b,with,commas\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, CellBeforeRowStartsARow) {
  Table t({"x"});
  t.cell("implicit");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"n", "epochs"});
  t.row().cell(std::size_t{8}).cell(3.5, 1);
  const std::string path = ::testing::TempDir() + "/lumen_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "n,epochs");
  std::getline(f, line);
  EXPECT_EQ(line, "8,3.5");
}

TEST(Table, SaveCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.save_csv("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace lumen::util
