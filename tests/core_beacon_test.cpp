// Beacon-insertion geometry tests: targets must land strictly outside the
// gate, keep every existing hull vertex a strict corner, give distinct
// movers distinct targets, and the special-case moves (side pop-out, line
// escape) must respect their own invariants.
#include "core/beacon.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "geom/hull.hpp"
#include "geom/predicates.hpp"
#include "model/snapshot.hpp"
#include "util/prng.hpp"

namespace lumen::core {
namespace {

using geom::Vec2;
using model::Light;

/// Owns the snapshot the LocalView's spans alias: build_view borrows the
/// snapshot arrays instead of copying them, so the snapshot must outlive
/// the view. Vector moves keep heap buffers, so returning by value is safe.
struct OwnedView : LocalView {
  model::Snapshot snap;
};

OwnedView view_of(const std::vector<Vec2>& world, std::size_t observer) {
  const model::LocalFrame frame{world[observer], 0.0, 1.0, false};
  OwnedView v;
  v.snap = model::build_snapshot(
      world, std::vector<Light>(world.size(), Light::kOff), observer, frame);
  static_cast<LocalView&>(v) = build_view(v.snap);
  return v;
}

TEST(InteriorInsertion, TargetOutsideGateKeepsHullStrict) {
  // Square with the observer inside near the bottom edge.
  const std::vector<Vec2> world = {{5, 2}, {0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const auto view = view_of(world, 0);
  ASSERT_EQ(view.role, Role::kInterior);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  const auto target = interior_insertion_target(view, *gate);
  ASSERT_TRUE(target.has_value());
  // Strictly outside the edge (below y = -2 in local frame).
  EXPECT_LT(target->y, -2.0);
  // Inserting the WORLD-mapped target keeps everyone a strict corner.
  std::vector<Vec2> new_world = {world[1], world[2], world[3], world[4]};
  new_world.push_back(world[0] + *target);  // Identity frame: local == offset.
  EXPECT_TRUE(geom::points_in_strictly_convex_position(new_world));
}

TEST(InteriorInsertion, RandomizedConvexityPreservation) {
  // Property sweep: for random interior observers in random convex worlds,
  // the insertion target extends the hull strictly.
  util::Prng rng{71};
  int tested = 0;
  for (int iter = 0; iter < 300 && tested < 120; ++iter) {
    const auto world =
        gen::generate(gen::ConfigFamily::kUniformDisk, 12,
                      1000 + static_cast<std::uint64_t>(iter));
    const auto hull = geom::convex_hull_indices(world);
    // Pick an interior robot if any.
    std::size_t interior = world.size();
    for (std::size_t i = 0; i < world.size(); ++i) {
      if (std::find(hull.begin(), hull.end(), i) == hull.end()) {
        interior = i;
        break;
      }
    }
    if (interior == world.size()) continue;
    const auto view = view_of(world, interior);
    if (view.role != Role::kInterior) continue;
    const auto gate = nearest_hull_edge(view);
    if (!gate) continue;
    const auto target = interior_insertion_target(view, *gate);
    ASSERT_TRUE(target.has_value());
    ++tested;
    // The target is strictly outside the local hull.
    const auto hull_pts = view.hull_points();
    EXPECT_EQ(geom::classify_against_hull(hull_pts, *target),
              geom::HullPosition::kOutside)
        << "iter " << iter;
    // Every previous hull vertex remains a strict vertex after insertion.
    std::vector<Vec2> extended = hull_pts;
    extended.push_back(*target);
    const auto new_hull = geom::convex_hull_indices(extended);
    EXPECT_EQ(new_hull.size(), extended.size()) << "iter " << iter;
  }
  EXPECT_GE(tested, 50);
}

TEST(InteriorInsertion, DistinctMoversGetDistinctTargets) {
  // Two observers near the same edge with different projections.
  const std::vector<Vec2> base = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  util::Prng rng{5};
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Vec2> world_a = base;
    std::vector<Vec2> world_b = base;
    const Vec2 pa{rng.uniform(1, 9), rng.uniform(0.5, 3)};
    Vec2 pb{rng.uniform(1, 9), rng.uniform(0.5, 3)};
    if (pa.x == pb.x) pb.x += 0.25;
    world_a.insert(world_a.begin(), pa);
    world_b.insert(world_b.begin(), pb);
    const auto va = view_of(world_a, 0);
    const auto vb = view_of(world_b, 0);
    const auto ga = nearest_hull_edge(va);
    const auto gb = nearest_hull_edge(vb);
    if (!ga || !gb) continue;
    const auto ta = interior_insertion_target(va, *ga);
    const auto tb = interior_insertion_target(vb, *gb);
    if (!ta || !tb) continue;
    // Map to world (identity frames centered at the observers).
    const Vec2 wa = pa + *ta;
    const Vec2 wb = pb + *tb;
    EXPECT_GT(geom::distance(wa, wb), 1e-9) << "iter " << iter;
  }
}

TEST(InteriorInsertion, ProjectionsBeyondEdgeEndsStillDistinct) {
  // The regression behind the identical-target collision: observers whose
  // feet fall BEYOND the same edge end must not collapse onto one target.
  const std::vector<Vec2> base = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  std::vector<Vec2> world_a = base;
  std::vector<Vec2> world_b = base;
  // Both observers project beyond x=4 relative to the bottom edge... their
  // nearest edge is the right one, so craft feet beyond y-ends instead:
  // use points near the bottom-left, projecting beyond x=0.
  world_a.insert(world_a.begin(), Vec2{0.4, 0.3});
  world_b.insert(world_b.begin(), Vec2{0.2, 0.35});
  const auto va = view_of(world_a, 0);
  const auto vb = view_of(world_b, 0);
  const auto ga = nearest_hull_edge(va);
  const auto gb = nearest_hull_edge(vb);
  ASSERT_TRUE(ga && gb);
  const auto ta = interior_insertion_target(va, *ga);
  const auto tb = interior_insertion_target(vb, *gb);
  ASSERT_TRUE(ta && tb);
  const Vec2 wa = Vec2{0.4, 0.3} + *ta;
  const Vec2 wb = Vec2{0.2, 0.35} + *tb;
  EXPECT_GT(geom::distance(wa, wb), 1e-6);
}

TEST(SidePopout, PerpendicularAndOutward) {
  const std::vector<Vec2> world = {{4, 0}, {0, 0}, {8, 0}, {4, 8}};
  const auto view = view_of(world, 0);
  ASSERT_EQ(view.role, Role::kSide);
  const auto edge = containing_hull_edge(view);
  ASSERT_TRUE(edge.has_value());
  const auto target = side_popout_target(view, *edge);
  ASSERT_TRUE(target.has_value());
  // All other robots have y >= 0 locally; outward is negative y.
  EXPECT_LT(target->y, 0.0);
  // Perpendicular: x unchanged.
  EXPECT_NEAR(target->x, 0.0, 1e-12);
  // Popping out puts the whole configuration in strictly convex position.
  std::vector<Vec2> popped = {world[1], world[2], world[3], world[0] + *target};
  EXPECT_TRUE(geom::points_in_strictly_convex_position(popped));
}

TEST(SidePopout, TwoPoppersSameEdgeParallelPaths) {
  const std::vector<Vec2> world_a = {{3, 0}, {0, 0}, {9, 0}, {4, 9}, {6, 0}};
  const std::vector<Vec2> world_b = {{6, 0}, {0, 0}, {9, 0}, {4, 9}, {3, 0}};
  const auto va = view_of(world_a, 0);
  const auto vb = view_of(world_b, 0);
  ASSERT_EQ(va.role, Role::kSide);
  ASSERT_EQ(vb.role, Role::kSide);
  const auto ea = containing_hull_edge(va);
  const auto eb = containing_hull_edge(vb);
  ASSERT_TRUE(ea && eb);
  const auto ta = side_popout_target(va, *ea);
  const auto tb = side_popout_target(vb, *eb);
  ASSERT_TRUE(ta && tb);
  // Both pop perpendicular (x unchanged in their local frames): paths are
  // parallel segments at distinct world x -> can never cross.
  EXPECT_NEAR(ta->x, 0.0, 1e-12);
  EXPECT_NEAR(tb->x, 0.0, 1e-12);
  EXPECT_LT(ta->y, 0.0);
  EXPECT_LT(tb->y, 0.0);
}

TEST(LineEscape, PerpendicularByQuarterOfNearestDistance) {
  std::vector<Vec2> world;
  for (int i = 0; i < 5; ++i) world.push_back({static_cast<double>(2 * i), 0.0});
  const auto view = view_of(world, 2);
  ASSERT_EQ(view.role, Role::kLine);
  const Vec2 target = line_escape_target(view);
  // Nearest visible robot is at distance 2; escape by 0.5 perpendicular.
  EXPECT_NEAR(std::fabs(target.y), 0.5, 1e-12);
  EXPECT_NEAR(target.x, 0.0, 1e-12);
}

TEST(LineEscape, AloneStaysPut) {
  const std::vector<Vec2> pts = {Vec2{}};
  const std::vector<Light> lights = {Light::kOff};
  LocalView view;
  view.pts = pts;
  view.lights = lights;
  EXPECT_EQ(line_escape_target(view), (Vec2{}));
}

TEST(PlanExits, PerpendicularPlansNearestFirstWithValidFeet) {
  // Square of Corner-lit anchors, observer near the bottom edge.
  const std::vector<Vec2> world = {{5, 2}, {0, 0}, {10, 0}, {10, 10}, {0, 10}};
  std::vector<Light> lights(world.size(), Light::kCorner);
  lights[0] = Light::kInterior;
  const model::LocalFrame frame{world[0], 0.0, 1.0, false};
  const auto snap = model::build_snapshot(world, lights, 0, frame);
  const auto view = build_view(snap);
  const auto plans = plan_exits(view, view.self());
  ASSERT_FALSE(plans.empty());
  // Nearest-first ordering.
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].gate.distance, plans[i].gate.distance);
  }
  // The first plan is the bottom edge; its target sits on the observer's
  // own column (perpendicular approach), strictly outside.
  const auto& best = plans.front();
  EXPECT_NEAR(best.gate.distance, 2.0, 1e-9);
  EXPECT_NEAR(best.target.x, 0.0, 1e-9);
  EXPECT_LT(best.target.y, -2.0);
  EXPECT_NEAR(best.exit_distance, geom::distance(view.self(), best.target), 1e-12);
}

TEST(PlanExits, RequiresCornerLitAnchors) {
  const std::vector<Vec2> world = {{5, 2}, {0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const model::LocalFrame frame{world[0], 0.0, 1.0, false};
  const auto snap = model::build_snapshot(
      world, std::vector<Light>(world.size(), Light::kOff), 0, frame);
  const auto view = build_view(snap);
  EXPECT_TRUE(plan_exits(view, view.self()).empty());
}

TEST(PlanExits, FootOutsideBandSkipsThatEdge) {
  // Observer in the notch outside the central band of the bottom edge: its
  // projection onto the bottom edge is at t = 0.02 (below 0.08), so the
  // bottom edge must NOT appear among its plans.
  const std::vector<Vec2> world = {{0.2, 1.5}, {0, 0}, {10, 0}, {10, 10}, {0, 10}};
  std::vector<Light> lights(world.size(), Light::kCorner);
  lights[0] = Light::kInterior;
  const model::LocalFrame frame{world[0], 0.0, 1.0, false};
  const auto snap = model::build_snapshot(world, lights, 0, frame);
  const auto view = build_view(snap);
  for (const auto& plan : plan_exits(view, view.self())) {
    // Local frame: the bottom edge lies at y == -1.5.
    const bool is_bottom =
        std::fabs(plan.gate.c1.y + 1.5) < 1e-9 && std::fabs(plan.gate.c2.y + 1.5) < 1e-9;
    EXPECT_FALSE(is_bottom);
  }
}

TEST(PlanExits, TargetsExtendHullStrictly) {
  // Property sweep mirroring the diagonal test, for perpendicular plans.
  int tested = 0;
  for (int iter = 0; iter < 200 && tested < 80; ++iter) {
    const auto world = gen::generate(gen::ConfigFamily::kUniformDisk, 14,
                                     5000 + static_cast<std::uint64_t>(iter));
    const auto hull = geom::convex_hull_indices(world);
    std::size_t interior = world.size();
    for (std::size_t i = 0; i < world.size(); ++i) {
      if (std::find(hull.begin(), hull.end(), i) == hull.end()) {
        interior = i;
        break;
      }
    }
    if (interior == world.size()) continue;
    std::vector<Light> lights(world.size(), Light::kCorner);
    lights[interior] = Light::kInterior;
    const model::LocalFrame frame{world[interior], 0.0, 1.0, false};
    const auto snap = model::build_snapshot(world, lights, interior, frame);
    const auto view = build_view(snap);
    if (view.role != Role::kInterior) continue;
    for (const auto& plan : plan_exits(view, view.self())) {
      ++tested;
      std::vector<Vec2> extended = view.hull_points();
      extended.push_back(plan.target);
      EXPECT_EQ(geom::convex_hull_indices(extended).size(), extended.size())
          << "iter " << iter;
    }
  }
  EXPECT_GE(tested, 40);
}

TEST(InteriorInsertion, DegenerateGateRejected) {
  const std::vector<Vec2> pts = {Vec2{}, Vec2{1, 1}, Vec2{1, 1}};
  const std::vector<Light> lights = {Light::kOff, Light::kCorner,
                                     Light::kCorner};
  LocalView view;
  view.pts = pts;
  view.lights = lights;
  const GateEdge gate{1, 2, {1, 1}, {1, 1}, 0.0};
  EXPECT_FALSE(interior_insertion_target(view, gate).has_value());
  EXPECT_FALSE(side_popout_target(view, gate).has_value());
}

}  // namespace
}  // namespace lumen::core
