// Harness-resilience tests (DESIGN.md §12): the checkpoint journal, the
// resume merge's byte-identity guarantee, the retry/error taxonomy, spec
// validation, and the cooperative stop. The central property pinned here:
// a campaign interrupted after ANY prefix of cells and resumed from its
// journal serializes byte-identically to the uninterrupted campaign, across
// pool sizes and shard counts.
#include "analysis/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace lumen::analysis {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.algorithm = "async-log";
  spec.family = gen::ConfigFamily::kUniformDisk;
  spec.n = 12;
  spec.runs = 6;
  spec.seed_base = 100;
  return spec;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "lumen_resilience_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  f << content;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

RunMetrics sample_metrics() {
  RunMetrics m;
  m.seed = 42;
  m.converged = true;
  m.epochs = 17;
  m.cycles = 1234;
  m.moves = 56;
  m.distance = 3.14159265358979;
  m.colors = 5;
  m.visibility_ok = true;
  m.collision_free = false;
  m.min_observed_separation = 1.25e-4;
  m.path_crossings = 2;
  m.position_collisions = 1;
  m.outcome = sim::RunOutcome::kCollision;
  m.faults.crashes = 3;
  m.faults.corrupted_reads = 7;
  m.faults.dropped_observations = 11;
  m.faults.perturbed_observations = 13;
  m.collision_channel = fault::FaultChannel::kLight;
  return m;
}

// ---------------------------------------------------------------------------
// Record round-trips.

TEST(Journal, RunMetricsJsonRoundTrip) {
  const RunMetrics m = sample_metrics();
  std::string error;
  const auto back = run_metrics_from_json(run_metrics_to_json(m), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, m);
}

TEST(Journal, CampaignErrorJsonRoundTrip) {
  const CampaignError e{CampaignErrorKind::kDeadline, 7, 3,
                        "run exceeded deadline_ms=50"};
  std::string error;
  const auto back = campaign_error_from_json(campaign_error_to_json(e), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, e);
}

TEST(Journal, ErrorKindStringsRoundTrip) {
  for (const auto k :
       {CampaignErrorKind::kSpecInvalid, CampaignErrorKind::kDeadline,
        CampaignErrorKind::kException, CampaignErrorKind::kCollisionAbort,
        CampaignErrorKind::kJournalMismatch}) {
    EXPECT_EQ(campaign_error_kind_from_string(to_string(k)), k);
  }
  EXPECT_FALSE(campaign_error_kind_from_string("bogus").has_value());
}

// ---------------------------------------------------------------------------
// Campaign identity: the key covers the physics, not the scheduling.

TEST(Journal, CampaignKeyIgnoresSchedulingFieldsButNotPhysics) {
  const CampaignSpec base = small_spec();
  const std::string key = campaign_key(base);

  CampaignSpec sharded = base;
  sharded.shard_index = 1;
  sharded.shard_count = 4;
  sharded.runs = 100;
  sharded.seed_base = 999;
  sharded.max_attempts = 5;
  sharded.retry_backoff_ms = 10;
  EXPECT_EQ(campaign_key(sharded), key)
      << "sharding / seed range / retry policy must not change the key";

  CampaignSpec other_n = base;
  other_n.n = base.n + 1;
  EXPECT_NE(campaign_key(other_n), key);

  CampaignSpec other_algo = base;
  other_algo.algorithm = "seq-baseline";
  EXPECT_NE(campaign_key(other_algo), key);

  CampaignSpec other_run = base;
  other_run.run.rigid_moves = false;
  EXPECT_NE(campaign_key(other_run), key);
}

// ---------------------------------------------------------------------------
// Journaling + resume.

TEST(Journal, RecordsEveryCellDurably) {
  const std::string path = temp_path("records_every_cell.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  {
    CampaignJournal journal(path);
    ASSERT_TRUE(journal.ok());
    CampaignControl control;
    control.journal = &journal;
    const auto result = run_campaign(spec, nullptr, control);
    ASSERT_EQ(result.runs.size(), 6u);
  }
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  EXPECT_EQ(loaded.dropped_partial_lines, 0u);
  EXPECT_EQ(loaded.snapshot->cell_count(), 6u);
  const std::string key = campaign_key(spec);
  for (std::size_t i = 0; i < 6; ++i) {
    const JournalCell* cell = loaded.snapshot->find(key, spec.seed_base + i);
    ASSERT_NE(cell, nullptr) << "seed " << spec.seed_base + i;
    ASSERT_TRUE(cell->metrics.has_value());
    EXPECT_EQ(cell->metrics->seed, spec.seed_base + i);
  }
}

// The tentpole property: kill after k cells (simulated by truncating the
// journal to its first k cell records — exactly what a SIGKILL mid-campaign
// leaves, since every record is fsync'd before the next), resume, and the
// merged result must serialize BYTE-identically to the uninterrupted run.
TEST(Journal, ResumeAfterAnyPrefixIsByteIdentical) {
  const std::string path = temp_path("resume_prefix.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  const std::string uninterrupted =
      campaign_result_to_json(run_campaign(spec));
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(spec, nullptr, control);
  }
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 8u);  // header + campaign declaration + 6 cells.

  for (const std::size_t k : {0u, 1u, 3u, 6u}) {
    SCOPED_TRACE("resume after " + std::to_string(k) + " journaled cells");
    const std::string partial = temp_path("resume_prefix_partial.jsonl");
    std::string content;
    for (std::size_t i = 0; i < 2 + k; ++i) content += lines[i] + "\n";
    write_file(partial, content);

    const auto loaded = load_journal(partial);
    ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
    ASSERT_EQ(loaded.snapshot->cell_count(), k);
    CampaignControl control;
    control.resume = &*loaded.snapshot;
    const auto resumed = run_campaign(spec, nullptr, control);
    EXPECT_EQ(resumed.cells_resumed, k);
    EXPECT_EQ(campaign_result_to_json(resumed), uninterrupted);
  }
}

TEST(Journal, ResumeIsByteIdenticalAcrossPoolSizes) {
  const std::string path = temp_path("resume_pools.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  util::ThreadPool serial{1};
  util::ThreadPool wide{8};
  const std::string uninterrupted =
      campaign_result_to_json(run_campaign(spec, &wide));
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(spec, &wide, control);
  }
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 8u);
  const std::string partial = temp_path("resume_pools_partial.jsonl");
  write_file(partial,
             lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n" + lines[3] +
                 "\n");
  const auto loaded = load_journal(partial);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  CampaignControl control;
  control.resume = &*loaded.snapshot;
  const auto resumed = run_campaign(spec, &serial, control);
  EXPECT_EQ(resumed.cells_resumed, 2u);
  EXPECT_EQ(campaign_result_to_json(resumed), uninterrupted);
}

// Shards share the campaign key (sharding is scheduling, not physics), so
// any shard can resume from a journal written by the unsharded run — and
// the merged shard results still reassemble the whole.
TEST(Journal, ShardsResumeFromUnshardedJournal) {
  const std::string path = temp_path("resume_shards.jsonl");
  std::remove(path.c_str());
  CampaignSpec spec = small_spec();
  spec.runs = 7;  // Deliberately not divisible by the shard count.
  const auto whole = run_campaign(spec);
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(spec, nullptr, control);
  }
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;

  std::vector<RunMetrics> merged;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    CampaignSpec part = spec;
    part.shard_index = shard;
    part.shard_count = 3;
    CampaignControl control;
    control.resume = &*loaded.snapshot;
    const auto result = run_campaign(part, nullptr, control);
    // Every cell was journaled by the unsharded run, so nothing re-runs.
    EXPECT_EQ(result.cells_resumed, result.runs.size());
    merged.insert(merged.end(), result.runs.begin(), result.runs.end());
  }
  ASSERT_EQ(merged.size(), whole.runs.size());
  std::sort(merged.begin(), merged.end(),
            [](const RunMetrics& a, const RunMetrics& b) {
              return a.seed < b.seed;
            });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    SCOPED_TRACE(merged[i].seed);
    EXPECT_EQ(merged[i], whole.runs[i]);
  }
}

// ---------------------------------------------------------------------------
// Loader robustness.

TEST(Journal, TornFinalLineIsDropped) {
  const std::string path = temp_path("torn_final.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(spec, nullptr, control);
  }
  // Simulate a kill mid-append: a prefix of a real record, no newline.
  std::ofstream(path, std::ios::app) << R"({"type":"cell","key":"dead)";
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  EXPECT_EQ(loaded.dropped_partial_lines, 1u);
  EXPECT_EQ(loaded.snapshot->cell_count(), 6u);
}

TEST(Journal, MalformedMiddleLineIsAnError) {
  const std::string path = temp_path("malformed_middle.jsonl");
  write_file(path,
             "{\"type\":\"lumen-journal\",\"version\":1}\n"
             "not json at all\n"
             "{\"type\":\"campaign\",\"key\":\"x\",\"signature\":{}}\n");
  const auto loaded = load_journal(path);
  EXPECT_FALSE(loaded.snapshot.has_value());
  EXPECT_NE(loaded.error.find(":2:"), std::string::npos) << loaded.error;
}

TEST(Journal, CellForUndeclaredCampaignIsAnError) {
  const std::string path = temp_path("undeclared.jsonl");
  write_file(path,
             "{\"type\":\"lumen-journal\",\"version\":1}\n"
             "{\"type\":\"cell\",\"key\":\"nope\",\"seed\":1,\"metrics\":{}}\n"
             "{\"type\":\"campaign\",\"key\":\"x\",\"signature\":{}}\n");
  const auto loaded = load_journal(path);
  EXPECT_FALSE(loaded.snapshot.has_value());
  EXPECT_NE(loaded.error.find("undeclared"), std::string::npos) << loaded.error;
}

TEST(Journal, NonJournalFileIsRejected) {
  const std::string path = temp_path("not_a_journal.jsonl");
  write_file(path, "{\"type\":\"lumen-scenario\",\"version\":1}\n");
  const auto loaded = load_journal(path);
  EXPECT_FALSE(loaded.snapshot.has_value());
}

TEST(Journal, EmptyFileIsAnEmptySnapshot) {
  const std::string path = temp_path("empty.jsonl");
  write_file(path, "");
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  EXPECT_EQ(loaded.snapshot->cell_count(), 0u);
}

// ---------------------------------------------------------------------------
// Multi-writer merging: overlapping shards, duplicate cells, key guards.
// These are the properties the fabric coordinator's journal merge rests on
// (DESIGN.md §17): duplicates are detected, counted and dropped first-write-
// wins, and a journal written for a DIFFERENT campaign is refused by name.

TEST(Journal, LoaderCountsAndDropsDuplicateCells) {
  const std::string path = temp_path("dup_cells.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  RunMetrics first = sample_metrics();
  first.seed = spec.seed_base;
  RunMetrics dup = first;
  dup.epochs = first.epochs + 99;  // A (hypothetical) conflicting rewrite.
  {
    CampaignJournal journal(path);
    ASSERT_TRUE(journal.ok());
    journal.append_cell(spec, first);
    journal.append_cell(spec, dup);
    journal.append_cell(spec, dup);
  }
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  EXPECT_EQ(loaded.duplicate_cells, 2u);
  EXPECT_EQ(loaded.snapshot->cell_count(), 1u);
  const JournalCell* cell =
      loaded.snapshot->find(campaign_key(spec), first.seed);
  ASSERT_NE(cell, nullptr);
  ASSERT_TRUE(cell->metrics.has_value());
  EXPECT_EQ(cell->metrics->epochs, first.epochs) << "first write must win";
}

// Two shard journals whose seed ranges OVERLAP (shard 0/2 and the unsharded
// whole) merge to exactly the whole campaign: the overlap is counted as
// duplicates, dropped first-write-wins, and the merged snapshot resumes
// byte-identically.
TEST(Journal, OverlappingShardJournalsMergeFirstWriteWins) {
  const CampaignSpec spec = small_spec();
  const std::string key = campaign_key(spec);
  const std::string uninterrupted =
      campaign_result_to_json(run_campaign(spec));

  const std::string whole_path = temp_path("overlap_whole.jsonl");
  const std::string shard_path = temp_path("overlap_shard.jsonl");
  std::remove(whole_path.c_str());
  std::remove(shard_path.c_str());
  {
    CampaignJournal journal(whole_path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(spec, nullptr, control);
  }
  {
    CampaignSpec half = spec;
    half.shard_index = 0;
    half.shard_count = 2;
    CampaignJournal journal(shard_path);
    CampaignControl control;
    control.journal = &journal;
    (void)run_campaign(half, nullptr, control);
  }
  auto whole = load_journal(whole_path);
  auto shard = load_journal(shard_path);
  ASSERT_TRUE(whole.snapshot.has_value()) << whole.error;
  ASSERT_TRUE(shard.snapshot.has_value()) << shard.error;
  ASSERT_EQ(whole.snapshot->cell_count(), 6u);
  ASSERT_EQ(shard.snapshot->cell_count(), 3u);

  JournalSnapshot merged = *shard.snapshot;
  std::string merge_error;
  const std::size_t dropped =
      merge_snapshots(merged, *whole.snapshot, &merge_error);
  EXPECT_EQ(merge_error, "");
  EXPECT_EQ(dropped, 3u) << "the shard's 3 cells overlap the whole run";
  EXPECT_EQ(merged.cell_count(), 6u);

  CampaignControl control;
  control.resume = &merged;
  const auto resumed = run_campaign(spec, nullptr, control);
  EXPECT_EQ(resumed.cells_resumed, 6u);
  EXPECT_EQ(campaign_result_to_json(resumed), uninterrupted);
}

TEST(Journal, MergeRejectsConflictingSignaturesForOneKey) {
  JournalSnapshot a;
  a.signatures["k"] = R"({"n":12})";
  a.cells["k"][1] = JournalCell{sample_metrics(), std::nullopt};
  JournalSnapshot b;
  b.signatures["k"] = R"({"n":13})";
  b.cells["k"][2] = JournalCell{sample_metrics(), std::nullopt};
  std::string error;
  (void)merge_snapshots(a, b, &error);
  EXPECT_NE(error.find("signature"), std::string::npos) << error;
  EXPECT_EQ(a.cells["k"].count(2), 0u)
      << "cells under a conflicting signature must not merge";
}

TEST(Journal, KeyMismatchGuardNamesTheField) {
  const CampaignSpec spec = small_spec();
  JournalSnapshot empty;
  EXPECT_EQ(journal_key_mismatch(empty, spec), "");

  JournalSnapshot matching;
  matching.signatures[campaign_key(spec)] = "{}";
  EXPECT_EQ(journal_key_mismatch(matching, spec), "");

  JournalSnapshot foreign;
  foreign.signatures["deadbeefdeadbeef"] = "{}";
  const std::string message = journal_key_mismatch(foreign, spec);
  EXPECT_NE(message.find("journal.key"), std::string::npos) << message;
  EXPECT_NE(message.find(campaign_key(spec)), std::string::npos) << message;
  EXPECT_NE(message.find("deadbeefdeadbeef"), std::string::npos) << message;
}

// ---------------------------------------------------------------------------
// Retry backoff: deterministic, jittered, capped.

TEST(Resilience, RetryBackoffIsDeterministicJitteredAndCapped) {
  EXPECT_EQ(retry_backoff_delay_ms(0, 1, 42), 0u) << "base 0 = immediate";
  // Pure function of (base, attempts, seed).
  EXPECT_EQ(retry_backoff_delay_ms(100, 2, 7), retry_backoff_delay_ms(100, 2, 7));
  // Jitter lands in [delay/2, delay] where delay doubles per failed attempt.
  for (std::size_t attempts = 1; attempts <= 12; ++attempts) {
    std::uint64_t delay = 100;
    for (std::size_t i = 1; i < attempts && delay < 5000; ++i) delay *= 2;
    delay = std::min<std::uint64_t>(delay, 5000);
    for (const std::uint64_t seed : {1u, 2u, 99u}) {
      const std::uint64_t d = retry_backoff_delay_ms(100, attempts, seed);
      EXPECT_GE(d, delay / 2) << attempts << "/" << seed;
      EXPECT_LE(d, delay) << attempts << "/" << seed;
    }
  }
  // Different seeds decorrelate (not all equal for the same attempt count).
  bool varied = false;
  const std::uint64_t first = retry_backoff_delay_ms(1000, 3, 0);
  for (std::uint64_t seed = 1; seed < 32 && !varied; ++seed) {
    varied = retry_backoff_delay_ms(1000, 3, seed) != first;
  }
  EXPECT_TRUE(varied) << "jitter must actually depend on the seed";
}

// ---------------------------------------------------------------------------
// Spec validation -> structured errors, never throws.

TEST(Resilience, InvalidSpecsAreRecordedNotThrown) {
  const struct {
    const char* field;
    void (*mutate)(CampaignSpec&);
  } cases[] = {
      {"algorithm", [](CampaignSpec& s) { s.algorithm = "bogus"; }},
      {"n", [](CampaignSpec& s) { s.n = 0; }},
      {"runs", [](CampaignSpec& s) { s.runs = 0; }},
      {"min_separation", [](CampaignSpec& s) { s.min_separation = 0.0; }},
      {"collision_tolerance",
       [](CampaignSpec& s) { s.collision_tolerance = -1.0; }},
      {"shard_index", [](CampaignSpec& s) { s.shard_index = 9; }},
      {"max_attempts", [](CampaignSpec& s) { s.max_attempts = 0; }},
      {"run.fault.crash.rate",
       [](CampaignSpec& s) { s.run.fault.crash.rate = 1.5; }},
      {"run.fault.light.probability",
       [](CampaignSpec& s) { s.run.fault.light.probability = -0.1; }},
      {"run.fault.noise.sigma",
       [](CampaignSpec& s) { s.run.fault.noise.sigma = -1.0; }},
      {"run.fault.noise.dropout",
       [](CampaignSpec& s) { s.run.fault.noise.dropout = 2.0; }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.field);
    CampaignSpec spec = small_spec();
    c.mutate(spec);
    const auto result = run_campaign(spec);
    EXPECT_TRUE(result.runs.empty());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].kind, CampaignErrorKind::kSpecInvalid);
    // The message must name the offending field.
    EXPECT_NE(result.errors[0].detail.find(c.field), std::string::npos)
        << result.errors[0].detail;
  }
}

TEST(Resilience, ValidSpecPassesValidation) {
  EXPECT_EQ(validate_campaign_spec(small_spec()), "");
}

TEST(Resilience, UnknownAlgorithmMessageListsRegisteredNames) {
  CampaignSpec spec = small_spec();
  spec.algorithm = "bogus";
  const std::string error = validate_campaign_spec(spec);
  EXPECT_NE(error.find("unknown algorithm \"bogus\""), std::string::npos)
      << error;
  EXPECT_NE(error.find("valid:"), std::string::npos) << error;
  for (const char* name :
       {"async-log", "seq-baseline", "ssync-parallel", "grid-cv",
        "mutual-vis"}) {
    EXPECT_NE(error.find(name), std::string::npos)
        << "message must list " << name << ": " << error;
  }
}

// ---------------------------------------------------------------------------
// Cooperative stop.

TEST(Resilience, StopFlagSkipsUntouchedCells) {
  std::atomic<bool> stop{true};
  CampaignControl control;
  control.stop = &stop;
  const auto result = run_campaign(small_spec(), nullptr, control);
  EXPECT_TRUE(result.runs.empty());
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.cells_skipped, 6u);
  EXPECT_FALSE(result.complete());
}

// The per-cell progress hook fires exactly once per EXECUTED cell (after
// its journal record) and never for resumed cells — the contract the fabric
// worker's event stream is built on.
TEST(Resilience, OnCellFiresOncePerExecutedCellNotForResumed) {
  const std::string path = temp_path("on_cell.jsonl");
  std::remove(path.c_str());
  const CampaignSpec spec = small_spec();
  std::mutex mutex;
  std::vector<std::uint64_t> seen;
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    control.on_cell = [&](std::uint64_t seed) {
      std::lock_guard lock(mutex);
      seen.push_back(seed);
    };
    (void)run_campaign(spec, nullptr, control);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], spec.seed_base + i);
  }

  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  seen.clear();
  CampaignControl control;
  control.resume = &*loaded.snapshot;
  control.on_cell = [&](std::uint64_t seed) {
    std::lock_guard lock(mutex);
    seen.push_back(seed);
  };
  const auto resumed = run_campaign(spec, nullptr, control);
  EXPECT_EQ(resumed.cells_resumed, 6u);
  EXPECT_TRUE(seen.empty()) << "resumed cells must not announce";
}

// ---------------------------------------------------------------------------
// Retry + error taxonomy.

// A deliberately impossible generator request (8 robots 150 apart in a
// 100-radius disk) throws deterministically in every attempt, so the cell
// must be retried max_attempts times and then recorded as kException —
// without aborting the other cells.
TEST(Resilience, ThrowingCellIsRetriedThenRecorded) {
  CampaignSpec spec = small_spec();
  spec.runs = 2;
  spec.min_separation = 150.0;
  spec.max_attempts = 3;
  const auto result = run_campaign(spec);
  EXPECT_TRUE(result.runs.empty());
  ASSERT_EQ(result.errors.size(), 2u);
  for (const auto& e : result.errors) {
    EXPECT_EQ(e.kind, CampaignErrorKind::kException);
    EXPECT_EQ(e.attempts, 3u);
    EXPECT_NE(e.detail.find("cannot fit"), std::string::npos) << e.detail;
  }
  EXPECT_EQ(result.errors[0].seed, spec.seed_base);
  EXPECT_EQ(result.errors[1].seed, spec.seed_base + 1);
}

// With a 1 ms watchdog a 64-robot run cannot finish (it needs thousands of
// Look/Compute cycles), so the deadline fires at a cycle boundary, the cell
// is retried, and the failure lands in the kDeadline bucket.
TEST(Resilience, DeadlineExceededCellIsRetriedThenRecorded) {
  CampaignSpec spec = small_spec();
  spec.n = 64;
  spec.runs = 1;
  spec.audit_collisions = false;
  spec.run.deadline_ms = 1;
  spec.max_attempts = 2;
  const auto result = run_campaign(spec);
  EXPECT_TRUE(result.runs.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].kind, CampaignErrorKind::kDeadline);
  EXPECT_EQ(result.errors[0].attempts, 2u);
}

// Failed cells are journaled too: resuming must not re-run a cell that
// already failed after its retries (a hung cell must not wedge every
// resume attempt of a long campaign).
TEST(Resilience, FailedCellsAreJournaledAndResumed) {
  const std::string path = temp_path("failed_cells.jsonl");
  std::remove(path.c_str());
  CampaignSpec spec = small_spec();
  spec.runs = 2;
  spec.min_separation = 150.0;  // Every cell throws deterministically.
  {
    CampaignJournal journal(path);
    CampaignControl control;
    control.journal = &journal;
    const auto result = run_campaign(spec, nullptr, control);
    ASSERT_EQ(result.errors.size(), 2u);
  }
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.snapshot.has_value()) << loaded.error;
  ASSERT_EQ(loaded.snapshot->cell_count(), 2u);
  CampaignControl control;
  control.resume = &*loaded.snapshot;
  const auto resumed = run_campaign(spec, nullptr, control);
  EXPECT_EQ(resumed.cells_resumed, 2u);
  ASSERT_EQ(resumed.errors.size(), 2u);
  EXPECT_EQ(resumed.errors[0].kind, CampaignErrorKind::kException);
}

}  // namespace
}  // namespace lumen::analysis
