// Replays every committed adversarial regression scenario under
// scenarios/adversarial/ (the minimized worst-case plans the hunt found —
// see DESIGN.md §16). Each document records the exact outcome class, epoch
// count and audited closest approach its hunt evaluation observed; runs are
// deterministic in their seed, so a replay that drifts by even one bit
// means engine behavior changed and the regression fired.
#include "search/scenario_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace lumen::search {
namespace {

std::vector<std::string> committed_scenarios() {
  std::vector<std::string> paths;
  const std::filesystem::path dir = LUMEN_ADVERSARIAL_SCENARIO_DIR;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".json") {
        paths.push_back(entry.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(AdversarialRegressions, AtLeastOneScenarioPerFitness) {
  const auto paths = committed_scenarios();
  ASSERT_GE(paths.size(), 3u)
      << "expected committed scenarios under " << LUMEN_ADVERSARIAL_SCENARIO_DIR
      << " (regenerate with `lumen-bench hunt --emit-dir`)";
  std::set<FitnessKind> covered;
  for (const auto& path : paths) {
    const auto parsed = load_adversarial_scenario(path);
    ASSERT_TRUE(parsed.scenario.has_value()) << path << ": " << parsed.error;
    covered.insert(parsed.scenario->fitness);
  }
  EXPECT_EQ(covered.size(), all_fitness_kinds().size())
      << "every fitness kind should have a committed worst case";
}

TEST(AdversarialRegressions, EveryCommittedScenarioRoundTripsByteIdentically) {
  for (const auto& path : committed_scenarios()) {
    const auto parsed = load_adversarial_scenario(path);
    ASSERT_TRUE(parsed.scenario.has_value()) << path << ": " << parsed.error;
    const std::string canonical =
        adversarial_scenario_to_json(*parsed.scenario);
    const auto reparsed = adversarial_scenario_from_json(canonical);
    ASSERT_TRUE(reparsed.scenario.has_value()) << path;
    EXPECT_EQ(adversarial_scenario_to_json(*reparsed.scenario), canonical)
        << path;
  }
}

TEST(AdversarialRegressions, EveryCommittedScenarioReplaysExactly) {
  for (const auto& path : committed_scenarios()) {
    const auto parsed = load_adversarial_scenario(path);
    ASSERT_TRUE(parsed.scenario.has_value()) << path << ": " << parsed.error;
    const ReplayVerdict verdict = replay_adversarial_scenario(*parsed.scenario);
    EXPECT_TRUE(verdict.passed()) << path << ": " << verdict.detail;
  }
}

}  // namespace
}  // namespace lumen::search
