// Thread pool tests: correctness of parallel_for, exception propagation,
// and determinism of campaign-style usage (order-independent reductions).
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lumen::util {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForWithGrain) {
  ThreadPool pool{3};
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); }, 16);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool{2};
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool{1};
  std::atomic<int> n{0};
  pool.parallel_for(50, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ConcurrentThrowersDeliverExactlyOneException) {
  // Many indices throw at once; exactly one exception must reach the caller
  // and the rest must be swallowed without crashing or leaking state into
  // subsequent parallel_for calls.
  ThreadPool pool{4};
  for (int round = 0; round < 3; ++round) {
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "parallel_for swallowed every exception";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u) << e.what();
    }
    // The pool is immediately reusable after each throwing round.
    std::atomic<int> n{0};
    pool.parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 16);
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool{2};
  std::atomic<int> n{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&n] { n.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(n.load(), 20);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPool, ParallelForSlotsCoversAllIndicesWithValidSlots) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.slot_count(), 4u);
  std::vector<std::atomic<int>> hits(777);
  std::atomic<bool> slot_ok{true};
  pool.parallel_for_slots(777, [&](std::size_t slot, std::size_t i) {
    if (slot >= pool.slot_count()) slot_ok = false;
    hits[i].fetch_add(1);
  });
  EXPECT_TRUE(slot_ok.load());
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForSlotsNeverRunsOneSlotConcurrently) {
  // The slot contract: tasks sharing a slot id are serialized, so per-slot
  // scratch needs no synchronization. Flag any overlapping entry.
  ThreadPool pool{4};
  std::vector<std::atomic<int>> in_slot(pool.slot_count());
  std::atomic<bool> overlapped{false};
  pool.parallel_for_slots(
      500,
      [&](std::size_t slot, std::size_t) {
        if (in_slot[slot].fetch_add(1) != 0) overlapped = true;
        in_slot[slot].fetch_sub(1);
      },
      /*grain=*/8);
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // Campaign topology: a pool worker's task fans out on the SAME pool. The
  // nested call must degrade to an inline serial loop (a worker blocking in
  // wait_idle on its own pool would deadlock).
  ThreadPool pool{2};
  std::vector<std::atomic<int>> outer_hits(8);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t i) {
    outer_hits[i].fetch_add(1);
    pool.parallel_for_slots(50, [&](std::size_t slot, std::size_t) {
      EXPECT_EQ(slot, 0u);  // Inline nested execution pins slot 0.
      inner_total.fetch_add(1);
    });
  });
  for (const auto& h : outer_hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(inner_total.load(), 8 * 50);
}

TEST(ThreadPool, NestedCallOnADifferentPoolStillRunsParallel) {
  ThreadPool outer{2};
  ThreadPool inner{2};
  std::atomic<int> total{0};
  outer.parallel_for(4, [&](std::size_t) {
    inner.parallel_for_slots(25, [&](std::size_t, std::size_t) {
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, OrderIndependentReductionMatchesSerial) {
  // The campaign pattern: per-index slots written in parallel equal the
  // serial result exactly.
  ThreadPool pool{8};
  std::vector<double> parallel_out(500), serial_out(500);
  const auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 50; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  pool.parallel_for(500, [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < 500; ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace lumen::util
