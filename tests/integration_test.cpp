// End-to-end integration tests: the paper's claims, executed.
//
// Each test runs full simulations and checks the machine-verifiable
// postconditions: convergence, complete visibility (C1), collision freedom
// (C4), O(1) colors (C3), and the relative behaviour of the baseline (C5).
// The parameterized matrix covers configuration families x schedulers x
// adversaries.
#include <gtest/gtest.h>

#include "analysis/campaign.hpp"
#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/monitors.hpp"
#include "sim/run.hpp"

namespace lumen {
namespace {

using sim::RunConfig;
using sim::SchedulerKind;

struct Outcome {
  sim::RunResult run;
  sim::VisibilityVerdict visibility;
  sim::CollisionReport collisions;
};

Outcome execute(std::string_view algorithm, gen::ConfigFamily family,
                std::size_t n, std::uint64_t seed, const RunConfig& base) {
  const auto algo = core::make_algorithm(algorithm);
  const auto initial = gen::generate(family, n, seed);
  RunConfig config = base;
  config.seed = seed;
  Outcome out{sim::run_simulation(*algo, initial, config), {}, {}};
  out.visibility = sim::verify_complete_visibility(out.run.final_positions);
  out.collisions = sim::check_collisions(out.run.initial_positions, out.run.moves,
                                         out.run.final_time);
  return out;
}

// ---------------------------------------------------------------------------
// The full ASYNC matrix for the paper's algorithm.
// ---------------------------------------------------------------------------

class AsyncMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<gen::ConfigFamily, sched::AdversaryKind, std::size_t>> {};

TEST_P(AsyncMatrixTest, SolvesCompleteVisibilityCollisionFree) {
  const auto [family, adversary, n] = GetParam();
  RunConfig config;
  config.scheduler = SchedulerKind::kAsync;
  config.adversary = adversary;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome out = execute("async-log", family, n, seed, config);
    EXPECT_TRUE(out.run.converged) << "seed " << seed;
    EXPECT_TRUE(out.visibility.complete()) << "seed " << seed;
    EXPECT_TRUE(out.collisions.hazard_free(1e-9))
        << "seed " << seed << " crossings=" << out.collisions.path_crossings
        << " collisions=" << out.collisions.position_collisions
        << " minsep=" << out.collisions.min_separation;
    EXPECT_LE(out.run.distinct_lights_used(), model::kLightCount);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAdversaries, AsyncMatrixTest,
    ::testing::Combine(
        ::testing::Values(gen::ConfigFamily::kUniformDisk,
                          gen::ConfigFamily::kGaussianBlob,
                          gen::ConfigFamily::kMultiCluster,
                          gen::ConfigFamily::kRingWithCore,
                          gen::ConfigFamily::kGrid, gen::ConfigFamily::kCollinear,
                          gen::ConfigFamily::kNearCollinear,
                          gen::ConfigFamily::kDenseDiameter),
        ::testing::Values(sched::AdversaryKind::kUniform,
                          sched::AdversaryKind::kBursty),
        ::testing::Values(std::size_t{24})));

INSTANTIATE_TEST_SUITE_P(
    HardAdversaries, AsyncMatrixTest,
    ::testing::Combine(::testing::Values(gen::ConfigFamily::kUniformDisk,
                                         gen::ConfigFamily::kRingWithCore),
                       ::testing::Values(sched::AdversaryKind::kStallOne,
                                         sched::AdversaryKind::kLockstep),
                       ::testing::Values(std::size_t{32})));

// ---------------------------------------------------------------------------
// Tiny configurations and degenerate cases.
// ---------------------------------------------------------------------------

class TinyNTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TinyNTest, AsyncLogHandlesSmallSwarms) {
  RunConfig config;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Outcome out =
        execute("async-log", gen::ConfigFamily::kUniformDisk, GetParam(), seed,
                config);
    EXPECT_TRUE(out.run.converged);
    EXPECT_TRUE(out.visibility.complete());
    EXPECT_TRUE(out.collisions.hazard_free(1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TinyNTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{4},
                                           std::size_t{5}, std::size_t{7}));

TEST(Integration, ExactlyCollinearStartIsEscapedAndSolved) {
  RunConfig config;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Outcome out =
        execute("async-log", gen::ConfigFamily::kCollinear, 20, seed, config);
    EXPECT_TRUE(out.run.converged) << seed;
    EXPECT_TRUE(out.visibility.complete()) << seed;
    EXPECT_TRUE(out.collisions.hazard_free(1e-9)) << seed;
  }
}

// ---------------------------------------------------------------------------
// All three algorithms under their home schedulers.
// ---------------------------------------------------------------------------

TEST(Integration, BaselineSolvesAsyncCorrectly) {
  RunConfig config;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome out =
        execute("seq-baseline", gen::ConfigFamily::kUniformDisk, 24, seed, config);
    EXPECT_TRUE(out.run.converged);
    EXPECT_TRUE(out.visibility.complete());
    // The fully serialized baseline DOES guarantee strict path disjointness.
    EXPECT_TRUE(out.collisions.clean());
  }
}

TEST(Integration, SsyncParallelSolvesUnderFsync) {
  RunConfig config;
  config.scheduler = SchedulerKind::kFsync;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome out = execute("ssync-parallel", gen::ConfigFamily::kUniformDisk,
                                24, seed, config);
    EXPECT_TRUE(out.run.converged);
    EXPECT_TRUE(out.visibility.complete());
  }
}

TEST(Integration, AsyncLogSolvesUnderSsyncToo) {
  RunConfig config;
  config.scheduler = SchedulerKind::kSsync;
  config.activation = sched::ActivationKind::kRandomHalf;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome out =
        execute("async-log", gen::ConfigFamily::kUniformDisk, 24, seed, config);
    EXPECT_TRUE(out.run.converged);
    EXPECT_TRUE(out.visibility.complete());
    EXPECT_TRUE(out.collisions.hazard_free(1e-9));
  }
}

// ---------------------------------------------------------------------------
// Claim-level properties.
// ---------------------------------------------------------------------------

TEST(Claims, ColorCountIndependentOfN) {
  // C3: the number of distinct colors displayed must not grow with N.
  RunConfig config;
  std::size_t colors_small = 0, colors_large = 0;
  {
    const Outcome out =
        execute("async-log", gen::ConfigFamily::kUniformDisk, 8, 3, config);
    colors_small = out.run.distinct_lights_used();
  }
  {
    const Outcome out =
        execute("async-log", gen::ConfigFamily::kUniformDisk, 96, 3, config);
    colors_large = out.run.distinct_lights_used();
  }
  EXPECT_LE(colors_large, model::kLightCount);
  EXPECT_LE(colors_large, colors_small + 2);
}

TEST(Claims, BaselineGrowsLinearlyAsyncLogDoesNot) {
  // C2 vs C5 in miniature: between N=16 and N=64 the baseline's epochs grow
  // about 4x; the paper algorithm's grow far slower.
  analysis::CampaignSpec spec;
  spec.runs = 4;
  spec.audit_collisions = false;
  spec.algorithm = "async-log";
  const auto fast = analysis::sweep_n(spec, {16, 64});
  spec.algorithm = "seq-baseline";
  const auto slow = analysis::sweep_n(spec, {16, 64});
  const double fast_ratio = fast[1].result.epochs().mean /
                            std::max(1.0, fast[0].result.epochs().mean);
  const double slow_ratio = slow[1].result.epochs().mean /
                            std::max(1.0, slow[0].result.epochs().mean);
  EXPECT_GT(slow_ratio, 2.5);
  EXPECT_LT(fast_ratio, slow_ratio);
}

TEST(Claims, HandshakeSerializesSameGate) {
  // C4 ablation: under identical ASYNC schedules, ssync-parallel (no
  // handshake) accumulates incidents across seeds where async-log stays
  // clean. (Any single seed may be lucky; the aggregate must separate.)
  RunConfig config;
  std::size_t ablation_incidents = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Outcome guarded =
        execute("async-log", gen::ConfigFamily::kUniformDisk, 48, seed, config);
    EXPECT_TRUE(guarded.collisions.hazard_free(1e-9)) << seed;
    const Outcome unguarded = execute("ssync-parallel",
                                      gen::ConfigFamily::kUniformDisk, 48, seed,
                                      config);
    ablation_incidents += unguarded.collisions.path_crossings +
                          unguarded.collisions.position_collisions;
  }
  EXPECT_GT(ablation_incidents, 0u);
}

TEST(Claims, CornerCountIsMonotoneNonDecreasing) {
  // Supporting invariant for C6: corners never lose corner status.
  RunConfig config;
  config.record_hull_history = true;
  const Outcome out =
      execute("async-log", gen::ConfigFamily::kRingWithCore, 48, 2, config);
  ASSERT_TRUE(out.run.converged);
  ASSERT_GE(out.run.hull_history.size(), 2u);
  for (std::size_t i = 1; i < out.run.hull_history.size(); ++i) {
    EXPECT_GE(out.run.hull_history[i].corners + 1,
              out.run.hull_history[i - 1].corners)
        << "at sample " << i;
  }
  EXPECT_EQ(out.run.hull_history.back().non_corners, 0u);
}

TEST(Claims, FinalLightsAreAllCornerLike) {
  const Outcome out = execute("async-log", gen::ConfigFamily::kUniformDisk, 32,
                              11, RunConfig{});
  ASSERT_TRUE(out.run.converged);
  for (const auto light : out.run.final_lights) {
    EXPECT_TRUE(light == model::Light::kCorner || light == model::Light::kLineEnd)
        << to_string(light);
  }
}

}  // namespace
}  // namespace lumen
