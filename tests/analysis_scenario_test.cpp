// ScenarioSpec serialization tests: the round-trip guarantee (serialize ->
// parse -> serialize is byte-identical), default handling for terse specs,
// and strict rejection of malformed documents.
#include "analysis/scenario.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lumen::analysis {
namespace {

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.algorithm = "seq-baseline";
  spec.family = gen::ConfigFamily::kRingWithCore;
  spec.ns = {8, 16, 32};
  spec.baseline_ns = {8, 16};
  spec.runs = 4;
  spec.seed_base = 1000;
  spec.min_separation = 0.0025;
  spec.audit_collisions = false;
  spec.collision_tolerance = 0.125;
  spec.shard_index = 1;
  spec.shard_count = 3;
  spec.max_attempts = 3;
  spec.retry_backoff_ms = 25;
  spec.abort_on_collision = true;
  spec.run.scheduler = sim::SchedulerKind::kSsync;
  spec.run.adversary = sched::AdversaryKind::kBursty;
  spec.run.max_cycles_per_robot = 512;
  spec.run.refresh_frames_each_look = false;
  spec.run.rigid_moves = false;
  spec.run.nonrigid_min_progress = 0.25;
  return spec;
}

TEST(Scenario, DefaultSpecRoundTripsByteIdentically) {
  const std::string text = scenario_to_json(ScenarioSpec{});
  const auto parsed = scenario_from_json(text);
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  EXPECT_EQ(scenario_to_json(*parsed.spec), text);
}

TEST(Scenario, FullyCustomizedSpecRoundTripsByteIdentically) {
  const std::string text = scenario_to_json(full_spec());
  const auto parsed = scenario_from_json(text);
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  EXPECT_EQ(scenario_to_json(*parsed.spec), text);
}

TEST(Scenario, ParsePreservesEveryField) {
  const auto parsed = scenario_from_json(scenario_to_json(full_spec()));
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  const ScenarioSpec& spec = *parsed.spec;
  EXPECT_EQ(spec.algorithm, "seq-baseline");
  EXPECT_EQ(spec.family, gen::ConfigFamily::kRingWithCore);
  EXPECT_EQ(spec.ns, (std::vector<std::size_t>{8, 16, 32}));
  EXPECT_EQ(spec.baseline_ns, (std::vector<std::size_t>{8, 16}));
  EXPECT_EQ(spec.runs, 4u);
  EXPECT_EQ(spec.seed_base, 1000u);
  EXPECT_DOUBLE_EQ(spec.min_separation, 0.0025);
  EXPECT_FALSE(spec.audit_collisions);
  EXPECT_DOUBLE_EQ(spec.collision_tolerance, 0.125);
  EXPECT_EQ(spec.shard_index, 1u);
  EXPECT_EQ(spec.shard_count, 3u);
  EXPECT_EQ(spec.max_attempts, 3u);
  EXPECT_EQ(spec.retry_backoff_ms, 25u);
  EXPECT_TRUE(spec.abort_on_collision);
  EXPECT_EQ(spec.run.scheduler, sim::SchedulerKind::kSsync);
  EXPECT_EQ(spec.run.adversary, sched::AdversaryKind::kBursty);
  EXPECT_EQ(spec.run.max_cycles_per_robot, 512u);
  EXPECT_FALSE(spec.run.refresh_frames_each_look);
  EXPECT_FALSE(spec.run.rigid_moves);
  EXPECT_DOUBLE_EQ(spec.run.nonrigid_min_progress, 0.25);
}

TEST(Scenario, MissingKeysKeepDefaults) {
  const auto parsed = scenario_from_json(
      R"({"type": "lumen-scenario", "version": 1, "runs": 7})");
  ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
  EXPECT_EQ(parsed.spec->runs, 7u);
  const ScenarioSpec defaults;
  EXPECT_EQ(parsed.spec->algorithm, defaults.algorithm);
  EXPECT_EQ(parsed.spec->family, defaults.family);
  EXPECT_EQ(parsed.spec->ns, defaults.ns);
  EXPECT_EQ(parsed.spec->seed_base, defaults.seed_base);
  EXPECT_EQ(parsed.spec->run.scheduler, defaults.run.scheduler);
}

TEST(Scenario, PluginAlgorithmNamesRoundTrip) {
  for (const char* name : {"grid-cv", "mutual-vis"}) {
    ScenarioSpec spec;
    spec.algorithm = name;
    if (std::string(name) == "grid-cv") {
      spec.family = gen::ConfigFamily::kLattice;
    }
    const std::string text = scenario_to_json(spec);
    const auto parsed = scenario_from_json(text);
    ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
    EXPECT_EQ(parsed.spec->algorithm, name);
    EXPECT_EQ(scenario_to_json(*parsed.spec), text);
  }
}

TEST(Scenario, UnknownAlgorithmIsRejectedAtParseTimeWithValidList) {
  const auto parsed = scenario_from_json(
      R"({"type": "lumen-scenario", "version": 1, "algorithm": "bogus"})");
  ASSERT_FALSE(parsed.spec.has_value());
  EXPECT_NE(parsed.error.find("unknown algorithm \"bogus\""),
            std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("valid:"), std::string::npos) << parsed.error;
  for (const char* name :
       {"async-log", "seq-baseline", "ssync-parallel", "grid-cv",
        "mutual-vis"}) {
    EXPECT_NE(parsed.error.find(name), std::string::npos)
        << "error must list " << name << ": " << parsed.error;
  }
}

TEST(Scenario, RejectsMalformedDocuments) {
  const char* bad[] = {
      "not json at all",
      R"({"type": "other-doc", "version": 1})",
      R"({"type": "lumen-scenario", "version": 99})",
      R"({"type": "lumen-scenario", "version": 1, "typo_key": 1})",
      R"({"type": "lumen-scenario", "version": 1, "family": "bogus"})",
      R"({"type": "lumen-scenario", "version": 1, "runs": 0})",
      R"({"type": "lumen-scenario", "version": 1, "ns": []})",
      R"({"type": "lumen-scenario", "version": 1, "ns": [8, -4]})",
      R"({"type": "lumen-scenario", "version": 1, "ns": [8.5]})",
      R"({"type": "lumen-scenario", "version": 1, "min_separation": 0})",
      R"({"type": "lumen-scenario", "version": 1, "shard_index": 2, "shard_count": 2})",
      R"({"type": "lumen-scenario", "version": 1, "max_attempts": 0})",
      R"({"type": "lumen-scenario", "version": 1, "retry_backoff_ms": -5})",
      R"({"type": "lumen-scenario", "version": 1, "abort_on_collision": 1})",
      R"({"type": "lumen-scenario", "version": 1, "run": {"scheduler": "NOPE"}})",
      R"({"type": "lumen-scenario", "version": 1, "run": {"adversary": "nope"}})",
      R"([1, 2, 3])",
  };
  for (const char* text : bad) {
    const auto parsed = scenario_from_json(text);
    EXPECT_FALSE(parsed.spec.has_value()) << text;
    EXPECT_FALSE(parsed.error.empty()) << text;
  }
}

TEST(Scenario, CampaignProjectionCopiesEveryKnob) {
  const ScenarioSpec spec = full_spec();
  const CampaignSpec campaign = spec.campaign(64);
  EXPECT_EQ(campaign.n, 64u);
  EXPECT_EQ(campaign.algorithm, spec.algorithm);
  EXPECT_EQ(campaign.family, spec.family);
  EXPECT_EQ(campaign.runs, spec.runs);
  EXPECT_EQ(campaign.seed_base, spec.seed_base);
  EXPECT_DOUBLE_EQ(campaign.min_separation, spec.min_separation);
  EXPECT_EQ(campaign.audit_collisions, spec.audit_collisions);
  EXPECT_DOUBLE_EQ(campaign.collision_tolerance, spec.collision_tolerance);
  EXPECT_EQ(campaign.shard_index, spec.shard_index);
  EXPECT_EQ(campaign.shard_count, spec.shard_count);
  EXPECT_EQ(campaign.max_attempts, spec.max_attempts);
  EXPECT_EQ(campaign.retry_backoff_ms, spec.retry_backoff_ms);
  EXPECT_EQ(campaign.abort_on_collision, spec.abort_on_collision);
  EXPECT_EQ(campaign.run.scheduler, spec.run.scheduler);
  EXPECT_EQ(campaign.run.adversary, spec.run.adversary);
}

TEST(Scenario, BaselineSizesDefaultToNs) {
  ScenarioSpec spec;
  spec.ns = {8, 16};
  EXPECT_EQ(spec.baseline_sizes(), spec.ns);
  spec.baseline_ns = {4};
  EXPECT_EQ(spec.baseline_sizes(), (std::vector<std::size_t>{4}));
}

TEST(Scenario, SaveAndLoadRoundTripThroughFile) {
  const std::string path = testing::TempDir() + "/scenario_roundtrip.json";
  const ScenarioSpec spec = full_spec();
  ASSERT_TRUE(save_scenario(spec, path));
  const auto loaded = load_scenario(path);
  ASSERT_TRUE(loaded.spec.has_value()) << loaded.error;
  EXPECT_EQ(scenario_to_json(*loaded.spec), scenario_to_json(spec));
}

TEST(Scenario, LoadReportsMissingFile) {
  const auto loaded = load_scenario("/nonexistent/scenario.json");
  EXPECT_FALSE(loaded.spec.has_value());
  EXPECT_FALSE(loaded.error.empty());
}

}  // namespace
}  // namespace lumen::analysis
