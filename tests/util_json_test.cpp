// util::json — parser/writer round trips and malformed-input rejection.
#include "util/json.hpp"

#include <gtest/gtest.h>

namespace lumen::util {
namespace {

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(JsonValue::null().is_null());
  EXPECT_TRUE(JsonValue::boolean(true).as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::number(2.5).as_double(), 2.5);
  EXPECT_EQ(JsonValue::integer(42).as_int(), 42);
  EXPECT_TRUE(JsonValue::integer(42).is_integer());
  EXPECT_EQ(JsonValue::string("hi").as_string(), "hi");
}

TEST(Json, IntegralDoubleKeepsExactForm) {
  // number(3.0) must print "3", not "3.0000...", for deterministic specs.
  EXPECT_EQ(json_write(JsonValue::number(3.0), 0), "3");
  EXPECT_EQ(json_write(JsonValue::number(0.5), 0), "0.5");
}

TEST(Json, ObjectInsertionOrderPreserved) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", JsonValue::integer(1));
  obj.set("alpha", JsonValue::integer(2));
  EXPECT_EQ(json_write(obj, 0), "{\"zeta\":1,\"alpha\":2}");
  ASSERT_NE(obj.find("alpha"), nullptr);
  EXPECT_EQ(obj.find("alpha")->as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, ParseBasicDocument) {
  const auto v = json_parse(
      R"({"name":"e1","ok":true,"n":64,"x":-1.5,"ns":[8,16],"nested":{"a":null}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("name")->as_string(), "e1");
  EXPECT_TRUE(v->find("ok")->as_bool());
  EXPECT_EQ(v->find("n")->as_int(), 64);
  EXPECT_DOUBLE_EQ(v->find("x")->as_double(), -1.5);
  ASSERT_EQ(v->find("ns")->items().size(), 2u);
  EXPECT_EQ(v->find("ns")->items()[1].as_int(), 16);
  EXPECT_TRUE(v->find("nested")->find("a")->is_null());
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto v = json_parse("  { \"a\" : [ 1 , 2 ] }\n");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->items().size(), 2u);
}

TEST(Json, RoundTripIsByteIdentical) {
  JsonValue obj = JsonValue::object();
  obj.set("algorithm", JsonValue::string("async-log"));
  obj.set("runs", JsonValue::integer(20));
  obj.set("min_separation", JsonValue::number(1e-3));
  JsonValue ns = JsonValue::array();
  ns.push_back(JsonValue::integer(8));
  ns.push_back(JsonValue::integer(16));
  obj.set("ns", std::move(ns));

  const std::string once = json_write(obj);
  const auto parsed = json_parse(once);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(json_write(*parsed), once);
}

TEST(Json, StringEscapes) {
  JsonValue v = JsonValue::string("a\"b\\c\nd\te");
  const std::string text = json_write(v, 0);
  const auto parsed = json_parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd\te");
  const auto unicode = json_parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->as_string(), "A\xc3\xa9");
}

TEST(Json, MalformedInputsRejectedWithError) {
  const char* bad[] = {
      "",          "{",         "{\"a\":}",  "[1,]",       "{\"a\":1,}",
      "tru",       "\"open",    "{\"a\" 1}", "[1 2]",      "01x",
      "{\"a\":1} trailing",     "nul",       "-",          "{\"a\":--1}",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, DeeplyNestedInputRejectedNotOverflowed) {
  // A hostile or corrupted document must fail with a parse error, not a
  // stack overflow in the recursive-descent parser.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string error;
  EXPECT_FALSE(json_parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // Mixed object/array nesting hits the same guard.
  std::string mixed;
  for (int i = 0; i < 100; ++i) mixed += "{\"a\":[";
  std::string mixed_error;
  EXPECT_FALSE(json_parse(mixed, &mixed_error).has_value());
  EXPECT_NE(mixed_error.find("nesting"), std::string::npos) << mixed_error;
}

TEST(Json, ModeratelyNestedInputStillParses) {
  std::string doc(100, '[');
  doc += std::string(100, ']');
  const auto v = json_parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_array());
}

TEST(Json, LargeIntegerPreserved) {
  const auto v = json_parse("1234567890123456789");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_integer());
  EXPECT_EQ(v->as_int(), 1234567890123456789LL);
  EXPECT_EQ(json_write(*v, 0), "1234567890123456789");
}

TEST(Json, PrettyPrintShape) {
  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::integer(1));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::integer(1));
  arr.push_back(JsonValue::integer(2));
  obj.set("ns", std::move(arr));
  EXPECT_EQ(json_write(obj, 2), "{\n  \"a\": 1,\n  \"ns\": [1, 2]\n}");
}

}  // namespace
}  // namespace lumen::util
