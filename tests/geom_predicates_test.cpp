// Robust-predicate tests: the exact orientation sign is the foundation of
// hulls, visibility, and collision classification — these tests include the
// adversarially near-degenerate inputs the floating filter must hand off to
// the exact expansion path.
#include "geom/predicates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/prng.hpp"

namespace lumen::geom {
namespace {

TEST(Orient2d, BasicLeftRightCollinear) {
  const Vec2 a{0, 0}, b{1, 0};
  EXPECT_EQ(orient2d(a, b, {0.5, 1.0}), 1);
  EXPECT_EQ(orient2d(a, b, {0.5, -1.0}), -1);
  EXPECT_EQ(orient2d(a, b, {2.0, 0.0}), 0);
  EXPECT_EQ(orient2d(a, b, {-3.0, 0.0}), 0);
  EXPECT_EQ(orient2d(a, b, a), 0);
  EXPECT_EQ(orient2d(a, b, b), 0);
}

TEST(Orient2d, AntisymmetricUnderSwap) {
  util::Prng rng{42};
  for (int i = 0; i < 1000; ++i) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_EQ(orient2d(a, b, c), -orient2d(b, a, c));
    EXPECT_EQ(orient2d(a, b, c), orient2d(b, c, a));
    EXPECT_EQ(orient2d(a, b, c), orient2d(c, a, b));
  }
}

TEST(Orient2d, ExactZeroOnConstructedCollinearTriples) {
  // Points constructed as exact multiples of one direction vector: the real
  // determinant is zero whenever the floating representations are collinear,
  // which holds for power-of-two multipliers.
  const Vec2 d{0.1234567890123, -0.9876543210987};
  const Vec2 a = d * 1.0;
  const Vec2 b = d * 2.0;
  const Vec2 c = d * 4.0;
  EXPECT_EQ(orient2d(a, b, c), 0);
  EXPECT_EQ(orient2d(b, c, a), 0);
}

TEST(Orient2d, NearDegenerateSignMatchesExact) {
  // Classic filter-killer: points nearly on a line, offsets at the last ulp.
  const Vec2 a{0.5, 0.5};
  const Vec2 b{12.0, 12.0};
  for (int k = -10; k <= 10; ++k) {
    const double eps = static_cast<double>(k) * 0x1.0p-52;
    const Vec2 c{24.0, 24.0 + eps};
    const int fast_exact = detail::orient2d_exact_sign(a, b, c);
    EXPECT_EQ(orient2d(a, b, c), fast_exact) << "k=" << k;
    // Analytic expectation on the STORED coordinate (the addition may round
    // back to 24 for sub-half-ulp offsets): the line is y = x, so the sign
    // is that of c.y - c.x.
    const int expected = c.y > c.x ? 1 : (c.y < c.x ? -1 : 0);
    EXPECT_EQ(fast_exact, expected) << "k=" << k;
  }
}

TEST(Orient2d, FilterAndExactAgreeOnRandomInputs) {
  util::Prng rng{7};
  for (int i = 0; i < 20000; ++i) {
    const Vec2 a{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
    const Vec2 b{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
    const Vec2 c{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
    EXPECT_EQ(orient2d(a, b, c), detail::orient2d_exact_sign(a, b, c));
  }
}

TEST(Orient2d, TranslatedGridDegeneracies) {
  // Lattice triples at a large offset: differences are exact, products are
  // not — the filter must still classify collinear runs as zero.
  const double base = 1e7;
  for (int i = 0; i < 50; ++i) {
    const Vec2 a{base + i, base + 2 * i};
    const Vec2 b{base + i + 1, base + 2 * (i + 1)};  // Not collinear with a's line...
    const Vec2 c{base + i + 2, base + 2 * (i + 2)};
    // a,b,c all on the line y = 2x - base exactly? y-coords: base+2i vs
    // 2*(base+i) - base = base + 2i. Yes: exactly collinear.
    EXPECT_EQ(orient2d(a, b, c), 0) << i;
  }
}

TEST(OnSegment, OpenVsClosedEndpoints) {
  const Vec2 a{0, 0}, b{10, 0};
  EXPECT_TRUE(on_segment_closed(a, b, a));
  EXPECT_TRUE(on_segment_closed(a, b, b));
  EXPECT_FALSE(on_segment_open(a, b, a));
  EXPECT_FALSE(on_segment_open(a, b, b));
  EXPECT_TRUE(on_segment_open(a, b, {5, 0}));
  EXPECT_FALSE(on_segment_open(a, b, {5, 1e-300}));
  EXPECT_FALSE(on_segment_open(a, b, {10.0000001, 0}));
  EXPECT_FALSE(on_segment_open(a, b, {-0.0000001, 0}));
}

TEST(OnSegment, VerticalAndDiagonal) {
  EXPECT_TRUE(on_segment_open({0, 0}, {0, 8}, {0, 3}));
  EXPECT_FALSE(on_segment_open({0, 0}, {0, 8}, {0, 9}));
  EXPECT_TRUE(on_segment_open({1, 1}, {5, 5}, {3, 3}));
  EXPECT_FALSE(on_segment_open({1, 1}, {5, 5}, {3, 3.0000001}));
}

TEST(Orient2dValue, SignConsistentWithPredicate) {
  util::Prng rng{99};
  for (int i = 0; i < 5000; ++i) {
    const Vec2 a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 c{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const double v = orient2d_value(a, b, c);
    const int s = orient2d(a, b, c);
    if (s > 0) {
      EXPECT_GT(v, 0.0);
    } else if (s < 0) {
      EXPECT_LT(v, 0.0);
    } else {
      EXPECT_EQ(v, 0.0);
    }
  }
}

// Parameterized sweep over coordinate magnitudes: the predicate must stay
// exact from subnormal-adjacent scales to 1e12.
class OrientScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(OrientScaleTest, CollinearStaysZeroUnderScaling) {
  const double s = GetParam();
  const Vec2 a{1.0 * s, 2.0 * s};
  const Vec2 b{2.0 * s, 4.0 * s};
  const Vec2 c{3.0 * s, 6.0 * s};
  EXPECT_EQ(orient2d(a, b, c), 0);
  const Vec2 c_up{3.0 * s, std::nextafter(6.0 * s, 1e300)};
  EXPECT_EQ(orient2d(a, b, c_up), 1);
  const Vec2 c_dn{3.0 * s, std::nextafter(6.0 * s, -1e300)};
  EXPECT_EQ(orient2d(a, b, c_dn), -1);
}

INSTANTIATE_TEST_SUITE_P(Scales, OrientScaleTest,
                         ::testing::Values(1e-6, 1e-3, 1.0, 1e3, 1e6, 1e9, 1e12));

}  // namespace
}  // namespace lumen::geom
