// Unit tests of the three algorithms' Compute rules on hand-built
// snapshots: who stays, who announces, who moves, and what colors they show.
#include "core/baseline_sequential.hpp"
#include "core/cv_async.hpp"
#include "core/registry.hpp"
#include "core/ssync_parallel.hpp"

#include <gtest/gtest.h>

#include "geom/segment.hpp"
#include "model/snapshot.hpp"

namespace lumen::core {
namespace {

using geom::Vec2;
using model::Action;
using model::Light;
using model::Snapshot;

struct SnapshotEntry {
  Vec2 position;
  Light light;
};

Snapshot make_snapshot(Light self, std::vector<SnapshotEntry> visible) {
  Snapshot snap;
  snap.reset(self);
  for (const SnapshotEntry& e : visible) {
    snap.push_visible(e.position, e.light);
  }
  return snap;
}

TEST(Registry, KnownNamesConstruct) {
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), name);
    EXPECT_FALSE(algo->palette().empty());
    EXPECT_LE(algo->palette().size(), model::kLightCount);
  }
}

TEST(Registry, UnknownNameThrowsListingValid) {
  try {
    (void)make_algorithm("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("async-log"), std::string::npos);
  }
}

class AllAlgorithmsTest : public ::testing::TestWithParam<std::string> {
 protected:
  model::AlgorithmPtr algo_ = make_algorithm(GetParam());
};

TEST_P(AllAlgorithmsTest, AloneRobotStaysAsCorner) {
  const Action a = algo_->compute(make_snapshot(Light::kOff, {}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kCorner);
}

TEST_P(AllAlgorithmsTest, CornerOfTriangleStays) {
  const Action a = algo_->compute(make_snapshot(
      Light::kOff, {{{4, 0}, Light::kOff}, {{2, 3}, Light::kOff}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kCorner);
}

TEST_P(AllAlgorithmsTest, LineEndpointHoldsStill) {
  const Action a = algo_->compute(make_snapshot(
      Light::kOff, {{{1, 0}, Light::kOff}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kLineEnd);
}

TEST_P(AllAlgorithmsTest, LineMiddleEscapesPerpendicular) {
  const Action a = algo_->compute(make_snapshot(
      Light::kOff, {{{-2, 0}, Light::kOff}, {{2, 0}, Light::kOff}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kLine);
  EXPECT_NEAR(a.target.x, 0.0, 1e-12);
  EXPECT_NEAR(std::fabs(a.target.y), 0.5, 1e-12);
}

TEST_P(AllAlgorithmsTest, DeterministicOnIdenticalSnapshots) {
  const Snapshot snap = make_snapshot(
      Light::kInterior, {{{4, 0}, Light::kCorner},
                         {{0, 4}, Light::kCorner},
                         {{-4, -4}, Light::kCorner}});
  const Action a = algo_->compute(snap);
  const Action b = algo_->compute(snap);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.light, b.light);
}

TEST_P(AllAlgorithmsTest, EmitsOnlyPaletteColors) {
  const auto palette = algo_->palette();
  const auto in_palette = [&](Light l) {
    return std::find(palette.begin(), palette.end(), l) != palette.end();
  };
  const std::vector<Snapshot> snaps = {
      make_snapshot(Light::kOff, {}),
      make_snapshot(Light::kOff, {{{1, 0}, Light::kOff}}),
      make_snapshot(Light::kOff, {{{-2, 0}, Light::kOff}, {{2, 0}, Light::kOff}}),
      make_snapshot(Light::kInterior, {{{4, 0}, Light::kCorner},
                                       {{0, 4}, Light::kCorner},
                                       {{-4, -4}, Light::kCorner}}),
  };
  for (const auto& snap : snaps) {
    EXPECT_TRUE(in_palette(algo_->compute(snap).light));
  }
}

INSTANTIATE_TEST_SUITE_P(All, AllAlgorithmsTest,
                         ::testing::Values("async-log", "seq-baseline",
                                           "ssync-parallel"));

// --- async-log specific handshake behaviour -------------------------------

// Interior robot surrounded by Corner-lit hull: first activation announces
// (kTransit, no move); with kTransit already set and no rivals, it moves.
TEST(CvAsync, TwoPhaseHandshake) {
  const CompleteVisibilityAsync algo;
  const std::vector<SnapshotEntry> corners = {{{4, -1}, Light::kCorner},
                                              {{-4, -1}, Light::kCorner},
                                              {{0, 6}, Light::kCorner}};
  // Phase 1: announce without moving.
  const Action phase1 = algo.compute(make_snapshot(Light::kInterior, corners));
  EXPECT_FALSE(phase1.moves());
  EXPECT_EQ(phase1.light, Light::kTransit);
  // Phase 2: fly through the nearest corner-lit edge (the bottom one),
  // switching to the flight light.
  const Action phase2 = algo.compute(make_snapshot(Light::kTransit, corners));
  EXPECT_TRUE(phase2.moves());
  EXPECT_EQ(phase2.light, Light::kMoving);
  EXPECT_LT(phase2.target.y, -1.0);  // Strictly outside the bottom edge.
}

TEST(CvAsync, InteriorDefersWithoutCornerLitGate) {
  const CompleteVisibilityAsync algo;
  const Action a = algo.compute(make_snapshot(
      Light::kOff, {{{4, -1}, Light::kOff},
                    {{-4, -1}, Light::kOff},
                    {{0, 6}, Light::kOff}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kInterior);
}

TEST(CvAsync, InteriorAnnouncesEvenWhenGateBusy) {
  const CompleteVisibilityAsync algo;
  // A Transit robot is already closest to the bottom edge; announcing
  // intent is stationary and always safe — only FLIGHT is arbitrated.
  const Action a = algo.compute(make_snapshot(
      Light::kInterior, {{{4, -2}, Light::kCorner},
                         {{-4, -2}, Light::kCorner},
                         {{0, 6}, Light::kCorner},
                         {{1, -1.5}, Light::kTransit}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kTransit);
}

TEST(CvAsync, RivalOnColumnForcesReplanToClearGate) {
  const CompleteVisibilityAsync algo;
  // A Transit rival sits almost exactly on my approach column to the
  // bottom gate: the corridor check rejects that plan, and the planner
  // falls through to a slant gate whose path stays clear of the rival.
  const geom::Vec2 rival{0.02, -1.5};
  const Action a = algo.compute(make_snapshot(
      Light::kTransit, {{{4, -2}, Light::kCorner},
                        {{-4, -2}, Light::kCorner},
                        {{0, 6}, Light::kCorner},
                        {rival, Light::kTransit}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kMoving);
  const geom::Segment flown{geom::Vec2{}, a.target};
  EXPECT_GT(geom::point_segment_distance(flown, rival), 0.1);
}

TEST(CvAsync, ColumnBlockedEverywhereWithdraws) {
  const CompleteVisibilityAsync algo;
  // Only the bottom gate is eligible (the slant edges share a non-Corner
  // vertex); a robot parked on my column blocks its corridor, and the
  // diagonal fallback is triangle-blocked by the same robot: the correct
  // move is to withdraw the intent entirely.
  const Action a = algo.compute(make_snapshot(
      Light::kTransit, {{{4, -2}, Light::kCorner},
                        {{-4, -2}, Light::kCorner},
                        {{0, 6}, Light::kInterior},
                        {{0.02, -1.5}, Light::kMoving}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kInterior);
}

TEST(CvAsync, ParallelColumnsFlyConcurrently) {
  const CompleteVisibilityAsync algo;
  // A Transit rival on a clearly different column: parallel approach paths
  // cannot cross, so both may fly.
  const Action a = algo.compute(make_snapshot(
      Light::kTransit, {{{4, -1}, Light::kCorner},
                        {{-4, -1}, Light::kCorner},
                        {{0, 6}, Light::kCorner},
                        {{2.0, -0.5}, Light::kTransit}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kMoving);
}

TEST(CvAsync, TransitWinsAgainstFartherRival) {
  const CompleteVisibilityAsync algo;
  // I am closer to the gate than the rival: I fly.
  const Action a = algo.compute(make_snapshot(
      Light::kTransit, {{{4, -1}, Light::kCorner},
                        {{-4, -1}, Light::kCorner},
                        {{0, 6}, Light::kCorner},
                        {{0.5, 3.0}, Light::kTransit}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kMoving);
}

TEST(CvAsync, InteriorDefersWhenCorridorBlockedAndNoOtherGate) {
  const CompleteVisibilityAsync algo;
  // An Off robot parks exactly on my approach column, and the slant edges
  // are ineligible (their shared top vertex is not Corner-lit): no clear
  // plan, withdraw to kInterior.
  const Action a = algo.compute(make_snapshot(
      Light::kInterior, {{{4, -1}, Light::kCorner},
                         {{-4, -1}, Light::kCorner},
                         {{0, 6}, Light::kInterior},
                         {{0.0, -0.5}, Light::kOff}}));
  EXPECT_FALSE(a.moves());
  EXPECT_EQ(a.light, Light::kInterior);
}

TEST(CvAsync, SideRobotPopsOut) {
  const CompleteVisibilityAsync algo;
  // On the open interior of the hull edge between (-4,0) and (4,0); third
  // robot above makes the view 2-D.
  const Action a = algo.compute(make_snapshot(
      Light::kOff, {{{-4, 0}, Light::kCorner},
                    {{4, 0}, Light::kCorner},
                    {{1, 5}, Light::kCorner}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kMoving);
  EXPECT_LT(a.target.y, 0.0);  // Away from the interior witness.
  EXPECT_NEAR(a.target.x, 0.0, 1e-12);
}

// --- baseline specific ------------------------------------------------------

TEST(SeqBaseline, AnyVisibleTransitFreezesEverything) {
  const SequentialAsyncBaseline algo;
  const Action a = algo.compute(make_snapshot(
      Light::kInterior, {{{4, -1}, Light::kCorner},
                         {{-4, -1}, Light::kCorner},
                         {{0, 6}, Light::kCorner},
                         // Far-away Transit still freezes the baseline.
                         {{3.99, 5.9}, Light::kTransit}}));
  EXPECT_FALSE(a.moves());
}

TEST(SeqBaseline, UniqueCandidateMoves) {
  const SequentialAsyncBaseline algo;
  const Action a = algo.compute(make_snapshot(
      Light::kInterior, {{{4, -1}, Light::kCorner},
                         {{-4, -1}, Light::kCorner},
                         {{0, 6}, Light::kCorner}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kTransit);
}

TEST(SeqBaseline, NonUniqueCandidateDefers) {
  const SequentialAsyncBaseline algo;
  // Another interior robot is closer to the boundary: I defer.
  const Action a = algo.compute(make_snapshot(
      Light::kInterior, {{{4, -2}, Light::kCorner},
                         {{-4, -2}, Light::kCorner},
                         {{0, 6}, Light::kCorner},
                         {{2, -1.2}, Light::kInterior}}));
  EXPECT_FALSE(a.moves());
}

// --- ssync-parallel specific ------------------------------------------------

TEST(SsyncParallel, MovesWithoutHandshake) {
  const SsyncParallel algo;
  // No Corner lights needed, no intent phase: straight to the move.
  const Action a = algo.compute(make_snapshot(
      Light::kOff, {{{4, -1}, Light::kOff},
                    {{-4, -1}, Light::kOff},
                    {{0, 6}, Light::kOff}}));
  EXPECT_TRUE(a.moves());
  EXPECT_EQ(a.light, Light::kTransit);
}

}  // namespace
}  // namespace lumen::core
