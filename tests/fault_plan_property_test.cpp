// FaultPlan serialization under adversarial inputs (the hunt mutates and
// journals plans by the thousand, so the parse boundary must be total):
// randomly generated valid plans round-trip byte-identically; corrupted /
// mutated documents either fail JSON parsing, fail fault_plan_from_json
// with a field-naming error, or parse to a plan whose canonical form
// round-trips byte-identically. Also covers the campaign validator's
// finiteness checks — infinities and NaNs must be rejected before they can
// poison a journal or a regression scenario.
#include "analysis/campaign.hpp"
#include "fault/plan.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace lumen::fault {
namespace {

FaultPlan random_valid_plan(util::Prng& rng) {
  FaultPlan plan;
  if (rng.bernoulli(0.6)) {
    plan.crash.count = rng.next_below(5);
    if (rng.bernoulli(0.5)) {
      plan.crash.schedule = CrashScheduleKind::kRate;
      plan.crash.rate = rng.next_double();
    } else {
      plan.crash.schedule = CrashScheduleKind::kTimes;
      const std::size_t k = rng.next_below(6);
      for (std::size_t i = 0; i < k; ++i) {
        plan.crash.times.push_back(rng.next_double() * 64.0);
      }
    }
  }
  if (rng.bernoulli(0.6)) {
    plan.light.probability = rng.next_double();
    const auto mode = rng.next_below(3);
    plan.light.mode = mode == 0   ? CorruptionMode::kStuck
                      : mode == 1 ? CorruptionMode::kFlip
                                  : CorruptionMode::kRandom;
  }
  if (rng.bernoulli(0.6)) {
    plan.noise.sigma = rng.next_double() * 0.1;
    plan.noise.dropout = rng.next_double();
  }
  return plan;
}

// The invariant every accepted document must satisfy: its canonical form is
// a fixed point of serialize -> parse -> serialize.
void expect_canonical_fixed_point(const FaultPlan& plan) {
  const std::string canonical = util::json_write(fault_plan_to_json(plan));
  const auto doc = util::json_parse(canonical);
  ASSERT_TRUE(doc.has_value()) << canonical;
  std::string error;
  const auto parsed = fault_plan_from_json(*doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error << "\n" << canonical;
  EXPECT_EQ(*parsed, plan);
  EXPECT_EQ(util::json_write(fault_plan_to_json(*parsed)), canonical);
}

TEST(FaultPlanProperty, RandomValidPlansRoundTripByteIdentically) {
  util::Prng rng(2024);
  for (int i = 0; i < 500; ++i) {
    expect_canonical_fixed_point(random_valid_plan(rng));
  }
}

// ---------------------------------------------------------------------------
// Adversarially mutated documents.

// Deterministic byte-level mutation of a serialized plan: splice random
// characters from a JSON-flavored alphabet over random positions. Most
// results are garbage (must fail cleanly); the rest must round-trip.
std::string mutate_text(std::string text, util::Prng& rng) {
  static const char kAlphabet[] = "0123456789.eE+-{}[]\",:truefalsnl ";
  const std::size_t edits = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < edits && !text.empty(); ++i) {
    const std::size_t at = rng.next_below(text.size());
    text[at] = kAlphabet[rng.next_below(sizeof kAlphabet - 1)];
  }
  return text;
}

TEST(FaultPlanProperty, MutatedDocumentsAreRejectedOrRoundTrip) {
  util::Prng rng(7);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    const FaultPlan base = random_valid_plan(rng);
    const std::string mutated =
        mutate_text(util::json_write(fault_plan_to_json(base)), rng);
    const auto doc = util::json_parse(mutated);
    if (!doc.has_value()) {
      ++rejected;  // Rejected at the parse boundary: fine.
      continue;
    }
    std::string error;
    const auto parsed = fault_plan_from_json(*doc, &error);
    if (!parsed.has_value()) {
      ++rejected;
      // The plan-level rejection must name a field, not be a blank error.
      EXPECT_FALSE(error.empty()) << mutated;
      continue;
    }
    ++accepted;
    expect_canonical_fixed_point(*parsed);
  }
  // The mutation alphabet is JSON-flavored, so both branches must be
  // exercised for the property to mean anything.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FaultPlanProperty, CraftedCorruptionsFailWithFieldNamingErrors) {
  const auto error_of = [](std::string_view text) {
    const auto doc = util::json_parse(text);
    if (!doc.has_value()) return std::string("<json parse error>");
    std::string error;
    const auto plan = fault_plan_from_json(*doc, &error);
    EXPECT_FALSE(plan.has_value()) << text;
    return error;
  };
  EXPECT_NE(error_of(R"({"bogus": {}})").find("bogus"), std::string::npos);
  EXPECT_NE(error_of(R"({"crash": 3})").find("crash"), std::string::npos);
  EXPECT_NE(error_of(R"({"crash": {"count": -1}})").find("count"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"crash": {"schedule": "sometimes"}})")
                .find("schedule"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"crash": {"times": [1.0, -2.0]}})").find("times"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"light": {"probability": 1.5}})").find("probability"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"light": {"mode": 7}})").find("mode"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"noise": {"sigma": -0.1}})").find("sigma"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"noise": {"dropout": 2.0}})").find("dropout"),
            std::string::npos);
}

TEST(FaultPlanProperty, OverflowingNumbersAreRejectedAtTheParseBoundary) {
  // 1e999 overflows to infinity, which the deterministic writer cannot
  // represent — the JSON layer itself must reject it so the byte-exact
  // round-trip guarantee stays total over accepted documents.
  EXPECT_FALSE(util::json_parse("1e999").has_value());
  EXPECT_FALSE(util::json_parse("-1e999").has_value());
  EXPECT_FALSE(
      util::json_parse(R"({"crash": {"rate": 1e999}})").has_value());
  // Large-but-finite stays accepted.
  EXPECT_TRUE(util::json_parse("1e308").has_value());
}

// ---------------------------------------------------------------------------
// Campaign-validator finiteness.

TEST(FaultPlanProperty, ValidatorRejectsNonFiniteKnobs) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  analysis::CampaignSpec spec;
  spec.min_separation = inf;
  EXPECT_NE(analysis::validate_campaign_spec(spec).find("finite"),
            std::string::npos);
  spec = {};
  spec.collision_tolerance = nan;
  EXPECT_NE(analysis::validate_campaign_spec(spec).find("finite"),
            std::string::npos);
  spec = {};
  spec.run.fault.crash.count = 1;
  spec.run.fault.crash.schedule = CrashScheduleKind::kTimes;
  spec.run.fault.crash.times = {1.0, inf};
  EXPECT_NE(analysis::validate_campaign_spec(spec).find("crash.times"),
            std::string::npos);
  spec = {};
  spec.run.fault.noise.sigma = nan;
  EXPECT_NE(analysis::validate_campaign_spec(spec).find("noise.sigma"),
            std::string::npos);
  EXPECT_TRUE(analysis::validate_campaign_spec(analysis::CampaignSpec{})
                  .empty());
}

}  // namespace
}  // namespace lumen::fault
