// Fabric unit tests (DESIGN.md §17): lease documents (round trip, checksum,
// validation), the worker event protocol, POSIX child-process plumbing, and
// the coordinator's local-fallback behavior. The end-to-end chaos property
// (random SIGKILLs, byte-identical merged report) lives in
// fabric_chaos_test.cpp because it needs the real lumen-bench binary.
#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/process.hpp"
#include "fabric/protocol.hpp"

#include "analysis/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace lumen::fabric {
namespace {

Lease sample_lease() {
  Lease lease;
  lease.scenario.algorithm = "async-log";
  lease.scenario.ns = {12};
  lease.scenario.runs = 8;
  lease.scenario.seed_base = 100;
  lease.scenario.shard_index = 1;
  lease.scenario.shard_count = 4;
  lease.campaign_key = analysis::campaign_key(lease_campaign(lease));
  lease.token = 7;
  lease.journal_path = "/tmp/shard-0-t7.jsonl";
  lease.resume_paths = {"/tmp/canonical.jsonl", "/tmp/shard-0-t3.jsonl"};
  lease.heartbeat_ms = 125;
  return lease;
}

// ---------------------------------------------------------------------------
// Lease documents.

TEST(Lease, JsonRoundTripIsByteIdentical) {
  const Lease lease = sample_lease();
  const std::string text = lease_to_json(lease);
  const LeaseParse back = lease_from_json(text);
  ASSERT_TRUE(back.lease.has_value()) << back.error;
  EXPECT_EQ(lease_to_json(*back.lease), text);
  EXPECT_EQ(back.lease->token, 7u);
  EXPECT_EQ(back.lease->journal_path, lease.journal_path);
  EXPECT_EQ(back.lease->resume_paths, lease.resume_paths);
  EXPECT_EQ(back.lease->heartbeat_ms, 125u);
  EXPECT_EQ(back.lease->scenario.shard_index, 1u);
  EXPECT_EQ(back.lease->scenario.shard_count, 4u);
}

TEST(Lease, FileRoundTrip) {
  const std::string path = testing::TempDir() + "lumen_fabric_lease.json";
  std::remove(path.c_str());
  const Lease lease = sample_lease();
  ASSERT_TRUE(save_lease(lease, path));
  const LeaseParse back = load_lease(path);
  ASSERT_TRUE(back.lease.has_value()) << back.error;
  EXPECT_EQ(lease_to_json(*back.lease), lease_to_json(lease));
}

// The campaign key doubles as a checksum: a lease whose embedded scenario
// does not hash to its declared key (stale file, manual edit) must not run
// the wrong cells under the right journal name.
TEST(Lease, KeyChecksumMismatchIsRejected) {
  Lease lease = sample_lease();
  lease.campaign_key = "0000000000000000";
  const LeaseParse back = lease_from_json(lease_to_json(lease));
  EXPECT_FALSE(back.lease.has_value());
  EXPECT_NE(back.error.find("campaign_key"), std::string::npos) << back.error;
}

TEST(Lease, RejectsMalformedDocuments) {
  EXPECT_FALSE(lease_from_json("not json").lease.has_value());
  EXPECT_FALSE(lease_from_json("[1,2]").lease.has_value());
  // Unknown keys are errors, same as every other spec document.
  Lease lease = sample_lease();
  std::string text = lease_to_json(lease);
  text.insert(text.find("\"token\""), "\"bogus\":1,");
  const LeaseParse unknown = lease_from_json(text);
  EXPECT_FALSE(unknown.lease.has_value());
  EXPECT_NE(unknown.error.find("bogus"), std::string::npos) << unknown.error;
  // A lease must carry exactly one sweep size: its shard IS one campaign.
  Lease two_ns = sample_lease();
  two_ns.scenario.ns = {12, 16};
  EXPECT_FALSE(lease_from_json(lease_to_json(two_ns)).lease.has_value());
  // And a journal to append to.
  Lease no_journal = sample_lease();
  no_journal.journal_path.clear();
  EXPECT_FALSE(lease_from_json(lease_to_json(no_journal)).lease.has_value());
}

// ---------------------------------------------------------------------------
// Worker event protocol.

TEST(Protocol, EventRoundTrips) {
  const WorkerEvent events[] = {
      {WorkerEventKind::kHello, 3, 0, 0, 0, 4242},
      {WorkerEventKind::kHeartbeat, 3, 0, 17, 0, 0},
      {WorkerEventKind::kCell, 3, 105, 18, 0, 0},
      {WorkerEventKind::kDone, 3, 0, 20, 2, 0},
  };
  for (const WorkerEvent& event : events) {
    SCOPED_TRACE(std::string(to_string(event.kind)));
    std::string error;
    const auto back = worker_event_from_line(worker_event_to_line(event), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->kind, event.kind);
    EXPECT_EQ(back->token, event.token);
    EXPECT_EQ(back->seed, event.seed);
    EXPECT_EQ(back->cells, event.cells);
    EXPECT_EQ(back->errors, event.errors);
    EXPECT_EQ(back->pid, event.pid);
  }
}

TEST(Protocol, RejectsMalformedLines) {
  EXPECT_FALSE(worker_event_from_line("").has_value());
  EXPECT_FALSE(worker_event_from_line("not json").has_value());
  EXPECT_FALSE(worker_event_from_line(R"({"type":"other"})").has_value());
  EXPECT_FALSE(worker_event_from_line(
                   R"({"type":"lumen-worker","event":"nope","token":1})")
                   .has_value());
  // A cell event without its seed is useless to the coordinator.
  EXPECT_FALSE(
      worker_event_from_line(
          R"({"type":"lumen-worker","event":"cell","token":1,"cells":2})")
          .has_value());
  // Tokens are fencing state; an event without one cannot be attributed.
  EXPECT_FALSE(worker_event_from_line(
                   R"({"type":"lumen-worker","event":"heartbeat","cells":0})")
                   .has_value());
}

// ---------------------------------------------------------------------------
// Child processes.

TEST(Process, SpawnReadReap) {
  std::string error;
  auto child = ChildProcess::spawn({"/bin/sh", "-c", "echo one; echo two"},
                                   &error);
  ASSERT_TRUE(child.has_value()) << error;
  std::vector<std::string> lines;
  bool closed = false;
  while (!closed) {
    for (auto& line : child->read_lines(&closed)) {
      lines.push_back(std::move(line));
    }
  }
  child->reap_with_timeout(5000);
  ASSERT_TRUE(child->exit_status().has_value());
  EXPECT_FALSE(child->exit_status()->signaled);
  EXPECT_EQ(child->exit_status()->code, 0);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
}

TEST(Process, ExecFailureReportsConventional127) {
  std::string error;
  auto child = ChildProcess::spawn({"/nonexistent/definitely-not-a-binary"},
                                   &error);
  ASSERT_TRUE(child.has_value()) << error;  // fork succeeds; exec fails.
  child->reap_with_timeout(5000);
  ASSERT_TRUE(child->exit_status().has_value());
  EXPECT_FALSE(child->exit_status()->signaled);
  EXPECT_EQ(child->exit_status()->code, 127);
}

TEST(Process, KillIsReportedAsSignaled) {
  std::string error;
  auto child = ChildProcess::spawn({"/bin/sh", "-c", "sleep 30"}, &error);
  ASSERT_TRUE(child.has_value()) << error;
  child->kill(SIGKILL);
  child->reap_with_timeout(5000);
  ASSERT_TRUE(child->exit_status().has_value());
  EXPECT_TRUE(child->exit_status()->signaled);
  EXPECT_EQ(child->exit_status()->code, SIGKILL);
}

// ---------------------------------------------------------------------------
// Coordinator fallbacks: with no worker fleet configured the fabric must
// degrade to a plain in-process run — same bytes, honest stats.

TEST(Coordinator, NoWorkersFallsBackToLocalRun) {
  analysis::CampaignSpec spec;
  spec.n = 12;
  spec.runs = 4;
  spec.seed_base = 50;
  const std::string direct =
      analysis::campaign_result_to_json(analysis::run_campaign(spec));

  FabricConfig config;
  config.workers = 0;
  const FabricResult result = run_fabric_campaign(spec, config);
  EXPECT_FALSE(result.stopped);
  EXPECT_EQ(analysis::campaign_result_to_json(result.result), direct);
  EXPECT_EQ(result.stats.leases_granted, 0u);
}

// An unspawnable worker binary burns the lease budget and then every cell
// falls back to local recomputation — the report is still byte-identical.
TEST(Coordinator, UnspawnableWorkersDegradeToLocalRecompute) {
  analysis::CampaignSpec spec;
  spec.n = 12;
  spec.runs = 4;
  spec.seed_base = 50;
  const std::string direct =
      analysis::campaign_result_to_json(analysis::run_campaign(spec));

  FabricConfig config;
  config.workers = 2;
  config.leases_per_worker = 1;
  config.worker_argv = {"/nonexistent/definitely-not-a-binary", "work"};
  config.max_lease_attempts = 2;
  config.relaunch_backoff_ms = 1;
  config.lease_ttl_ms = 1000;
  config.dir = testing::TempDir() + "lumen_fabric_unspawnable";
  const FabricResult result = run_fabric_campaign(spec, config);
  EXPECT_FALSE(result.stopped);
  EXPECT_EQ(analysis::campaign_result_to_json(result.result), direct);
  EXPECT_EQ(result.stats.shards_failed, result.stats.shards);
  EXPECT_EQ(result.stats.cells_recomputed_locally, 4u);
}

}  // namespace
}  // namespace lumen::fabric
