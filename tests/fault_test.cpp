// lumen_fault unit tests: enum string round-trips, FaultPlan JSON
// serialization (byte-identical round-trip, strict parse errors) and the
// FaultState channel semantics in isolation (crash budget/schedules, noisy
// views, light corruption, per-Look stream determinism).
#include "fault/plan.hpp"
#include "fault/state.hpp"

#include "model/frame.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace lumen::fault {
namespace {

// ---------------------------------------------------------------------------
// Enum round-trips (satellite: from_string/to_string follow the repo's
// case-insensitive parser convention).

TEST(FaultEnums, CrashScheduleRoundTrips) {
  for (const auto k : {CrashScheduleKind::kRate, CrashScheduleKind::kTimes}) {
    const auto parsed = crash_schedule_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(crash_schedule_from_string("RATE"), CrashScheduleKind::kRate);
  EXPECT_EQ(crash_schedule_from_string("Times"), CrashScheduleKind::kTimes);
  EXPECT_EQ(crash_schedule_from_string("sometimes"), std::nullopt);
  EXPECT_EQ(crash_schedule_from_string(""), std::nullopt);
}

TEST(FaultEnums, CorruptionModeRoundTrips) {
  for (const auto m :
       {CorruptionMode::kStuck, CorruptionMode::kFlip, CorruptionMode::kRandom}) {
    const auto parsed = corruption_mode_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value()) << to_string(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(corruption_mode_from_string("STUCK"), CorruptionMode::kStuck);
  EXPECT_EQ(corruption_mode_from_string("Flip"), CorruptionMode::kFlip);
  EXPECT_EQ(corruption_mode_from_string("garbled"), std::nullopt);
}

TEST(FaultEnums, ChannelNamesAreStable) {
  EXPECT_EQ(to_string(FaultChannel::kNone), "none");
  EXPECT_EQ(to_string(FaultChannel::kCrash), "crash");
  EXPECT_EQ(to_string(FaultChannel::kLight), "light");
  EXPECT_EQ(to_string(FaultChannel::kNoise), "noise");
}

// ---------------------------------------------------------------------------
// Plan JSON.

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.crash.count = 3;
  plan.crash.schedule = CrashScheduleKind::kTimes;
  plan.crash.times = {0.5, 2.0, 7.25};
  plan.light.probability = 0.125;
  plan.light.mode = CorruptionMode::kFlip;
  plan.noise.sigma = 0.01;
  plan.noise.dropout = 0.0625;
  return plan;
}

TEST(FaultPlanJson, RoundTripsByteIdentically) {
  for (const FaultPlan& plan : {FaultPlan{}, sample_plan()}) {
    const std::string text = util::json_write(fault_plan_to_json(plan));
    const auto json = util::json_parse(text);
    ASSERT_TRUE(json.has_value());
    std::string error;
    const auto parsed = fault_plan_from_json(*json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, plan);
    EXPECT_EQ(util::json_write(fault_plan_to_json(*parsed)), text);
  }
}

TEST(FaultPlanJson, MissingKeysKeepDefaults) {
  const auto json = util::json_parse(R"({"light": {"probability": 0.5}})");
  ASSERT_TRUE(json.has_value());
  std::string error;
  const auto parsed = fault_plan_from_json(*json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->light.probability, 0.5);
  EXPECT_EQ(parsed->light.mode, CorruptionMode::kRandom);
  EXPECT_EQ(parsed->crash, CrashPlan{});
  EXPECT_EQ(parsed->noise, SensorNoisePlan{});
}

TEST(FaultPlanJson, RejectsBadDocuments) {
  const char* bad[] = {
      R"("not an object")",
      R"({"bogus": 1})",
      R"({"crash": {"count": -1}})",
      R"({"crash": {"rate": 1.5}})",
      R"({"crash": {"times": [-0.5]}})",
      R"({"crash": {"schedule": "sometimes"}})",
      R"({"light": {"probability": 2.0}})",
      R"({"light": {"mode": "garbled"}})",
      R"({"noise": {"sigma": -1.0}})",
      R"({"noise": {"dropout": -0.1}})",
  };
  for (const char* text : bad) {
    const auto json = util::json_parse(text);
    ASSERT_TRUE(json.has_value()) << text;
    std::string error;
    EXPECT_EQ(fault_plan_from_json(*json, &error), std::nullopt) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FaultPlan, ActivityPredicates) {
  EXPECT_FALSE(FaultPlan{}.any());
  FaultPlan count_without_rate;
  count_without_rate.crash.count = 2;  // rate 0 -> channel still inert.
  EXPECT_FALSE(count_without_rate.any());
  FaultPlan rate_without_count;
  rate_without_count.crash.rate = 0.5;  // count 0 -> budget empty.
  EXPECT_FALSE(rate_without_count.any());
  EXPECT_TRUE(sample_plan().any());
}

// ---------------------------------------------------------------------------
// FaultState: crash channel.

TEST(FaultState, InactivePlanNeverCrashes) {
  FaultState state;
  state.init(FaultPlan{}, util::Prng{42}, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(state.try_crash(r, 0.0));
    EXPECT_FALSE(state.crashed(r));
  }
  EXPECT_EQ(state.crash_count(), 0u);
  EXPECT_FALSE(state.counters().any());
}

TEST(FaultState, RateScheduleRespectsBudget) {
  FaultPlan plan;
  plan.crash.count = 2;
  plan.crash.rate = 1.0;  // Every check crashes, until the budget runs out.
  FaultState state;
  state.init(plan, util::Prng{42}, 8);
  EXPECT_TRUE(state.try_crash(3, 0.0));
  EXPECT_TRUE(state.crashed(3));
  EXPECT_FALSE(state.try_crash(3, 1.0));  // Already dead: no double kill.
  EXPECT_TRUE(state.try_crash(5, 1.0));
  EXPECT_EQ(state.crash_count(), 2u);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(state.try_crash(r, 2.0)) << r;  // Budget exhausted.
  }
  EXPECT_EQ(state.counters().crashes, 2u);
}

TEST(FaultState, TimesScheduleFiresAtInstants) {
  FaultPlan plan;
  plan.crash.count = 2;
  plan.crash.schedule = CrashScheduleKind::kTimes;
  plan.crash.times = {5.0, 1.0};  // Unsorted on purpose; sorted on init.
  FaultState state;
  state.init(plan, util::Prng{42}, 4);
  EXPECT_FALSE(state.try_crash(0, 0.5));  // Before the first instant.
  EXPECT_TRUE(state.try_crash(1, 1.0));   // Claims the t=1 entry.
  EXPECT_FALSE(state.try_crash(2, 2.0));  // Next entry is t=5.
  EXPECT_TRUE(state.try_crash(3, 6.0));   // Claims the t=5 entry.
  EXPECT_FALSE(state.try_crash(0, 100.0));
  EXPECT_EQ(state.crash_count(), 2u);
}

// ---------------------------------------------------------------------------
// FaultState: view channels.

TEST(FaultState, LookRngIsDeterministicPerRobotAndSeq) {
  FaultPlan plan;
  plan.noise.sigma = 0.1;
  FaultState state;
  state.init(plan, util::Prng{7}, 4);
  util::Prng a = state.look_rng(2, 17);
  util::Prng b = state.look_rng(2, 17);
  util::Prng c = state.look_rng(2, 18);
  util::Prng d = state.look_rng(3, 17);
  const std::uint64_t va = a(), vb = b();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, c());
  EXPECT_NE(va, d());
}

TEST(FaultState, NoisyViewKeepsObserverExactAndCountsPerturbations) {
  FaultPlan plan;
  plan.noise.sigma = 0.25;
  FaultState state;
  state.init(plan, util::Prng{7}, 4);
  const std::vector<double> xs = {0, 1, 0, 1};
  const std::vector<double> ys = {0, 0, 1, 1};
  const std::vector<model::Light> lights(4, model::Light::kCorner);
  ViewScratch view;
  LookFaultStats stats;
  util::Prng rng = state.look_rng(1, 0);
  const std::size_t self =
      state.make_noisy_view(1, rng, xs, ys, lights, view, stats);
  ASSERT_EQ(view.xs.size(), 4u);
  ASSERT_EQ(view.ys.size(), 4u);
  EXPECT_EQ(view.xs[self], xs[1]);  // Observer untouched.
  EXPECT_EQ(view.ys[self], ys[1]);
  EXPECT_EQ(stats.dropped, 0u);     // dropout == 0: nobody vanishes.
  EXPECT_EQ(stats.perturbed, 3u);
  for (std::size_t j = 0; j < 4; ++j) {
    if (j == self) continue;
    EXPECT_TRUE(view.xs[j] != xs[j] || view.ys[j] != ys[j]) << j;
  }
}

TEST(FaultState, FullDropoutLeavesOnlyTheObserver) {
  FaultPlan plan;
  plan.noise.dropout = 1.0;
  FaultState state;
  state.init(plan, util::Prng{7}, 5);
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  const std::vector<double> ys = {0, 0, 0, 0, 0};
  const std::vector<model::Light> lights(5, model::Light::kOff);
  ViewScratch view;
  LookFaultStats stats;
  util::Prng rng = state.look_rng(2, 0);
  const std::size_t self =
      state.make_noisy_view(2, rng, xs, ys, lights, view, stats);
  ASSERT_EQ(view.xs.size(), 1u);
  EXPECT_EQ(self, 0u);
  EXPECT_EQ(view.xs[0], xs[2]);
  EXPECT_EQ(view.ys[0], ys[2]);
  EXPECT_EQ(stats.dropped, 4u);
}

TEST(FaultState, CorruptLightsAlwaysMisreadsUnderCertainty) {
  for (const auto mode :
       {CorruptionMode::kStuck, CorruptionMode::kFlip, CorruptionMode::kRandom}) {
    FaultPlan plan;
    plan.light.probability = 1.0;
    plan.light.mode = mode;
    FaultState state;
    state.init(plan, util::Prng{11}, 4);
    model::Snapshot snap;
    snap.reset(model::Light::kCorner);
    snap.push_visible(geom::Vec2{1, 0}, model::Light::kCorner);
    snap.push_visible(geom::Vec2{0, 1}, model::Light::kSide);
    snap.push_visible(geom::Vec2{1, 1}, model::Light::kOff);
    LookFaultStats stats;
    util::Prng rng = state.look_rng(0, 0);
    state.corrupt_lights(rng, snap, stats);
    EXPECT_EQ(stats.corrupted, 3u) << to_string(mode);
    EXPECT_EQ(snap.self_light, model::Light::kCorner);  // Never the self light.
    const auto others = snap.other_lights();
    // A corrupted read is an actual MISREAD, never the original color...
    EXPECT_NE(others[0], model::Light::kCorner) << to_string(mode);
    EXPECT_NE(others[1], model::Light::kSide) << to_string(mode);
    if (mode == CorruptionMode::kStuck) {
      // ...except kStuck, which pins everything at kOff by definition.
      for (const auto l : others) EXPECT_EQ(l, model::Light::kOff);
    } else {
      EXPECT_NE(others[2], model::Light::kOff) << to_string(mode);
    }
  }
}

TEST(FaultState, AccountSumsIntoCounters) {
  FaultPlan plan;
  plan.noise.sigma = 0.1;
  FaultState state;
  state.init(plan, util::Prng{3}, 2);
  state.account(LookFaultStats{2, 3, 4});
  state.account(LookFaultStats{1, 0, 5});
  const FaultCounters c = state.counters();
  EXPECT_EQ(c.corrupted_reads, 3u);
  EXPECT_EQ(c.dropped_observations, 3u);
  EXPECT_EQ(c.perturbed_observations, 9u);
  EXPECT_EQ(c.crashes, 0u);
}

}  // namespace
}  // namespace lumen::fault
