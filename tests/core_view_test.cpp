// LocalView tests: the classification soundness lemma (local role == global
// role under obstructed visibility), gate selection, and handshake
// predicates.
#include "core/view.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "geom/hull.hpp"
#include "model/snapshot.hpp"
#include "util/prng.hpp"

namespace lumen::core {
namespace {

using geom::Vec2;
using model::Light;

/// Owns the snapshot the LocalView's spans alias: build_view borrows the
/// snapshot arrays instead of copying them, so the snapshot must outlive
/// the view. Vector moves keep heap buffers, so returning by value is safe.
struct OwnedView : LocalView {
  model::Snapshot snap;
};

/// Builds the observer's view of a world configuration with an identity
/// robot-centered frame and given lights.
OwnedView view_of(const std::vector<Vec2>& world, const std::vector<Light>& lights,
                  std::size_t observer) {
  const model::LocalFrame frame{world[observer], 0.0, 1.0, false};
  OwnedView v;
  v.snap = model::build_snapshot(world, lights, observer, frame);
  static_cast<LocalView&>(v) = build_view(v.snap);
  return v;
}

OwnedView view_of(const std::vector<Vec2>& world, std::size_t observer) {
  return view_of(world, std::vector<Light>(world.size(), Light::kOff), observer);
}

TEST(BuildView, AloneAndPair) {
  EXPECT_EQ(view_of({{5, 5}}, 0).role, Role::kAlone);
  // Two robots: each sees one point -> a "line" with self extreme.
  EXPECT_EQ(view_of({{0, 0}, {3, 0}}, 0).role, Role::kLineEnd);
}

TEST(BuildView, TriangleAllCorners) {
  const std::vector<Vec2> world = {{0, 0}, {4, 0}, {2, 3}};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(view_of(world, i).role, Role::kCorner) << i;
  }
}

TEST(BuildView, InteriorRobotClassifiesInterior) {
  const std::vector<Vec2> world = {{0, 0}, {8, 0}, {4, 8}, {4, 2.5}};
  EXPECT_EQ(view_of(world, 3).role, Role::kInterior);
  EXPECT_EQ(view_of(world, 0).role, Role::kCorner);
}

TEST(BuildView, SideRobotOnHullEdge) {
  const std::vector<Vec2> world = {{0, 0}, {8, 0}, {4, 8}, {4, 0}};
  EXPECT_EQ(view_of(world, 3).role, Role::kSide);
}

TEST(BuildView, LineRolesOnExactLine) {
  std::vector<Vec2> world;
  for (int i = 0; i < 7; ++i) world.push_back({static_cast<double>(i), 0.0});
  EXPECT_EQ(view_of(world, 0).role, Role::kLineEnd);
  EXPECT_EQ(view_of(world, 6).role, Role::kLineEnd);
  for (std::size_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(view_of(world, i).role, Role::kLine) << i;
  }
}

TEST(BuildView, LineRoleSurvivesRandomFrames) {
  // The tolerant nearly-collinear test must hold under similarity frames.
  std::vector<Vec2> world;
  for (int i = 0; i < 9; ++i) world.push_back({1.7 * i, -0.3 * 1.7 * i});
  const std::vector<Light> lights(world.size(), Light::kOff);
  util::Prng rng{5};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t observer = 1 + rng.next_below(7);
    const auto frame = model::LocalFrame::random(world[observer], rng);
    const auto snap = model::build_snapshot(world, lights, observer, frame);
    const auto view = build_view(snap);
    EXPECT_EQ(view.role, Role::kLine) << "trial " << trial;
  }
}

// The classification soundness lemma: despite obstruction, a robot's LOCAL
// role against its visible set equals its GLOBAL role against all robots.
class ClassificationSoundness
    : public ::testing::TestWithParam<std::tuple<gen::ConfigFamily, std::size_t>> {};

TEST_P(ClassificationSoundness, LocalRoleMatchesGlobalRole) {
  const auto [family, n] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto world = gen::generate(family, n, seed);
    const auto global_hull = geom::convex_hull_indices(world);
    const bool world_line = geom::all_collinear(world);
    const auto hull_pts = [&] {
      std::vector<Vec2> pts;
      for (const auto i : global_hull) pts.push_back(world[i]);
      return pts;
    }();
    for (std::size_t i = 0; i < world.size(); ++i) {
      const Role local = view_of(world, i).role;
      if (world_line) {
        EXPECT_TRUE(local == Role::kLine || local == Role::kLineEnd) << i;
        continue;
      }
      const auto global_pos = geom::classify_against_hull(hull_pts, world[i]);
      switch (global_pos) {
        case geom::HullPosition::kVertex:
          EXPECT_EQ(local, Role::kCorner) << "robot " << i << " seed " << seed;
          break;
        case geom::HullPosition::kEdge:
          EXPECT_EQ(local, Role::kSide) << "robot " << i << " seed " << seed;
          break;
        case geom::HullPosition::kInterior:
          // Tolerant line classification may fire for nearly-degenerate
          // local views; interior must never be mistaken for corner/side.
          EXPECT_TRUE(local == Role::kInterior || local == Role::kLine ||
                      local == Role::kLineEnd)
              << "robot " << i << " seed " << seed;
          break;
        case geom::HullPosition::kOutside:
          FAIL() << "world point outside world hull";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSizes, ClassificationSoundness,
    ::testing::Combine(::testing::Values(gen::ConfigFamily::kUniformDisk,
                                         gen::ConfigFamily::kGaussianBlob,
                                         gen::ConfigFamily::kRingWithCore,
                                         gen::ConfigFamily::kGrid,
                                         gen::ConfigFamily::kDenseDiameter),
                       ::testing::Values(std::size_t{8}, std::size_t{32},
                                         std::size_t{96})));

TEST(GateSelection, NearestHullEdge) {
  // Observer just above the bottom edge of a square.
  const std::vector<Vec2> world = {{5, 1}, {0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const auto view = view_of(world, 0);
  ASSERT_EQ(view.role, Role::kInterior);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  EXPECT_NEAR(gate->distance, 1.0, 1e-9);
  // The gate must be the bottom edge (both endpoints have y == -1 in the
  // observer-centered frame).
  EXPECT_NEAR(gate->c1.y, -1.0, 1e-9);
  EXPECT_NEAR(gate->c2.y, -1.0, 1e-9);
}

TEST(GateSelection, ContainingEdgeForSideRobot) {
  const std::vector<Vec2> world = {{4, 0}, {0, 0}, {8, 0}, {4, 8}};
  const auto view = view_of(world, 0);
  ASSERT_EQ(view.role, Role::kSide);
  const auto edge = containing_hull_edge(view);
  ASSERT_TRUE(edge.has_value());
  // Both endpoints are on the x-axis in local coordinates.
  EXPECT_NEAR(edge->c1.y, 0.0, 1e-12);
  EXPECT_NEAR(edge->c2.y, 0.0, 1e-12);
}

TEST(GateBlocking, CloserRobotInTriangleBlocks) {
  // Observer at (5,3) (bottom edge nearest); robot at (5,1.5) is in the
  // triangle between the observer and that edge.
  const std::vector<Vec2> world = {{5, 3}, {0, 0}, {10, 0}, {5, 10}, {5, 1.5}};
  const auto view = view_of(world, 0);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  EXPECT_TRUE(gate_blocked_by_closer_robot(view, *gate));
}

TEST(GateBlocking, EmptyTriangleDoesNotBlock) {
  const std::vector<Vec2> world = {{5, 1.5}, {0, 0}, {10, 0}, {5, 10}, {5, 3}};
  const auto view = view_of(world, 0);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  EXPECT_FALSE(gate_blocked_by_closer_robot(view, *gate));
}

TEST(TransitPredicates, TrafficAndProximity) {
  const std::vector<Vec2> world = {{5, 3}, {0, 0}, {10, 0}, {5, 10}, {5, 1.5}};
  std::vector<Light> lights(world.size(), Light::kCorner);
  lights[0] = Light::kInterior;
  lights[4] = Light::kTransit;
  const auto view = view_of(world, lights, 0);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  // The Transit robot at (5,1.5) is nearest to the bottom edge (the
  // observer's gate): traffic.
  EXPECT_TRUE(gate_has_transit_traffic(view, *gate));
  EXPECT_TRUE(transit_within(view, 3.0));
  EXPECT_FALSE(transit_within(view, 1.0));
}

TEST(TransitPredicates, NoTrafficWithoutTransitLights) {
  const std::vector<Vec2> world = {{5, 3}, {0, 0}, {10, 0}, {5, 10}, {5, 1.5}};
  const auto view = view_of(world, 0);
  const auto gate = nearest_hull_edge(view);
  ASSERT_TRUE(gate.has_value());
  EXPECT_FALSE(gate_has_transit_traffic(view, *gate));
  EXPECT_FALSE(transit_within(view, 100.0));
}

TEST(EstimatedExitPath, PointsOutward) {
  const std::vector<Vec2> world = {{5, 3}, {0, 0}, {10, 0}, {5, 10}, {5, 1.5}};
  const auto view = view_of(world, 0);
  // Robot 4 at local (0, -1.5): its nearest edge is the bottom (local
  // y = -3); the estimated exit path must end strictly below it.
  const auto path = estimated_exit_path(view, Vec2{0, -1.5});
  ASSERT_TRUE(path.has_value());
  EXPECT_LT(path->b.y, -3.0 + 1e-9);
}

TEST(LocalViewAccessors, HullPointsMatchIndices) {
  const std::vector<Vec2> world = {{5, 4}, {0, 0}, {10, 0}, {5, 10}};
  const auto view = view_of(world, 0);
  const auto hp = view.hull_points();
  ASSERT_EQ(hp.size(), view.hull.size());
  for (std::size_t k = 0; k < hp.size(); ++k) {
    EXPECT_EQ(hp[k], view.pts[view.hull[k]]);
  }
  EXPECT_EQ(view.count(), world.size());
  EXPECT_EQ(view.self(), (Vec2{0, 0}));
}

}  // namespace
}  // namespace lumen::core
