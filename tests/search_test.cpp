// The adversarial search subsystem (src/search): genome serialization and
// operator determinism, hunt-trajectory bit-identity across repeats and
// pool sizes (pinned by a golden digest), the bandit strategy, the
// shrinking minimizer's contract, regression-scenario round-trip/replay,
// and the E13 external registration hook.
#include "search/experiment.hpp"
#include "search/hunt.hpp"
#include "search/minimize.hpp"
#include "search/plan.hpp"
#include "search/scenario_io.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lumen::search {
namespace {

// A hunt small enough for a unit test but big enough to exercise every
// stage: several (mu+lambda) generations plus a minimization pass.
HuntSpec tiny_spec(FitnessKind fitness = FitnessKind::kEpochs,
                   StrategyKind strategy = StrategyKind::kMuPlusLambda) {
  HuntSpec spec;
  spec.fitness = fitness;
  spec.strategy = strategy;
  spec.hunt_seed = 7;
  spec.seed_plan.n = 8;
  spec.bounds.n_min = 6;
  spec.bounds.n_max = 10;
  spec.budget = 10;
  spec.population = 2;
  spec.offspring = 4;
  spec.batch = 4;
  spec.minimize_budget = 8;
  spec.max_cycles_per_robot = 96;
  return spec;
}

// ---------------------------------------------------------------------------
// Genome serialization.

TEST(AdversaryPlan, DefaultPlanRoundTripsByteIdentically) {
  const AdversaryPlan plan;
  const std::string text = util::json_write(adversary_plan_to_json(plan));
  const auto doc = util::json_parse(text);
  ASSERT_TRUE(doc.has_value());
  std::string error;
  const auto parsed = adversary_plan_from_json(*doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, plan);
  EXPECT_EQ(util::json_write(adversary_plan_to_json(*parsed)), text);
}

TEST(AdversaryPlan, RandomPlansRoundTripByteIdentically) {
  // The property the journal and the regression scenarios rely on: any plan
  // the search can produce serializes to a canonical form that parses back
  // to an equal plan and re-serializes to the same bytes.
  util::Prng rng(11);
  const PlanBounds bounds;
  AdversaryPlan base;
  for (int i = 0; i < 200; ++i) {
    const AdversaryPlan plan = random_plan(base, bounds, rng);
    const std::string text = util::json_write(adversary_plan_to_json(plan));
    const auto doc = util::json_parse(text);
    ASSERT_TRUE(doc.has_value()) << text;
    std::string error;
    const auto parsed = adversary_plan_from_json(*doc, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << text;
    EXPECT_EQ(*parsed, plan);
    EXPECT_EQ(util::json_write(adversary_plan_to_json(*parsed)), text);
  }
}

TEST(AdversaryPlan, UnknownKeysAndBadKindsAreFieldNamedErrors) {
  const auto parse = [](std::string_view text) {
    const auto doc = util::json_parse(text);
    EXPECT_TRUE(doc.has_value());
    std::string error;
    const auto plan = adversary_plan_from_json(*doc, &error);
    EXPECT_FALSE(plan.has_value());
    return error;
  };
  EXPECT_NE(parse(R"({"bogus": 1})").find("plan: unknown key"),
            std::string::npos);
  EXPECT_NE(parse(R"({"scheduler": "warped"})").find("plan.scheduler"),
            std::string::npos);
  EXPECT_NE(parse(R"({"n": 0})").find("plan.n"), std::string::npos);
  EXPECT_NE(parse(R"({"seed": -3})").find("plan.seed"), std::string::npos);
  EXPECT_NE(parse(R"({"fault": {"light": {"probability": 2.0}}})")
                .find("plan.fault"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Operators.

TEST(AdversaryPlan, OperatorsAreDeterministicInTheRngState) {
  const PlanBounds bounds;
  AdversaryPlan base;
  util::Prng rng_a(42);
  util::Prng rng_b(42);
  for (int i = 0; i < 50; ++i) {
    const AdversaryPlan ra = random_plan(base, bounds, rng_a);
    const AdversaryPlan rb = random_plan(base, bounds, rng_b);
    ASSERT_EQ(ra, rb);
    const AdversaryPlan ma = mutate(ra, bounds, rng_a);
    const AdversaryPlan mb = mutate(rb, bounds, rng_b);
    ASSERT_EQ(ma, mb);
    ASSERT_EQ(crossover(ra, ma, rng_a), crossover(rb, mb, rng_b));
  }
}

TEST(AdversaryPlan, MutationStaysInsideBounds) {
  PlanBounds bounds;
  bounds.n_min = 6;
  bounds.n_max = 12;
  bounds.crash_count_max = 2;
  bounds.crash_rate_max = 0.1;
  bounds.light_probability_max = 0.2;
  bounds.noise_sigma_max = 0.01;
  bounds.noise_dropout_max = 0.1;
  util::Prng rng(5);
  AdversaryPlan plan;
  for (int i = 0; i < 500; ++i) {
    plan = mutate(plan, bounds, rng);
    ASSERT_GE(plan.n, bounds.n_min);
    ASSERT_LE(plan.n, bounds.n_max);
    ASSERT_LE(plan.fault.crash.count, bounds.crash_count_max);
    ASSERT_LE(plan.fault.crash.rate, bounds.crash_rate_max);
    ASSERT_LE(plan.fault.crash.times.size(), bounds.crash_times_max);
    ASSERT_LE(plan.fault.light.probability, bounds.light_probability_max);
    ASSERT_LE(plan.fault.noise.sigma, bounds.noise_sigma_max);
    ASSERT_LE(plan.fault.noise.dropout, bounds.noise_dropout_max);
    // The scheduler never mutates unless the bounds opt in.
    ASSERT_EQ(plan.scheduler, sim::SchedulerKind::kAsync);
  }
}

TEST(AdversaryPlan, ClampForcesTheFsyncActivationInvariant) {
  const PlanBounds bounds;
  AdversaryPlan plan;
  plan.scheduler = sim::SchedulerKind::kFsync;
  plan.activation = sched::ActivationKind::kRandomHalf;
  clamp_plan(plan, bounds);
  EXPECT_EQ(plan.activation, sched::ActivationKind::kAll);
  plan.scheduler = sim::SchedulerKind::kAsync;
  clamp_plan(plan, bounds);
  EXPECT_NE(plan.activation, sched::ActivationKind::kAll);
}

// ---------------------------------------------------------------------------
// Hunt determinism.

TEST(Hunt, SameSeedSameTrajectory) {
  const HuntSpec spec = tiny_spec();
  const HuntResult a = run_hunt(spec);
  const HuntResult b = run_hunt(spec);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    ASSERT_EQ(a.history[i].plan, b.history[i].plan) << "i=" << i;
    ASSERT_EQ(a.history[i].score, b.history[i].score) << "i=" << i;
  }
  ASSERT_TRUE(a.best.has_value());
  EXPECT_EQ(a.best->plan, b.best->plan);
  EXPECT_EQ(hunt_digest(a), hunt_digest(b));
}

TEST(Hunt, DigestIsInvariantAcrossPoolSizes) {
  // The whole trajectory — proposals, scores, winner, minimization — is
  // assembled on the driver thread and index-addressed, so the worker count
  // can only change wall-clock time, never a byte of the result.
  const HuntSpec spec = tiny_spec();
  util::ThreadPool serial{1};
  util::ThreadPool wide{4};
  const HuntResult a = run_hunt(spec, &serial);
  const HuntResult b = run_hunt(spec, &wide);
  EXPECT_EQ(hunt_digest(a), hunt_digest(b));
}

TEST(Hunt, GoldenDigestPinned) {
  // Golden cross-platform constant, same philosophy as sim_golden_test: a
  // change here means the search trajectory itself changed — bump
  // deliberately, with a CHANGES.md note.
  const HuntResult result = run_hunt(tiny_spec());
  EXPECT_EQ(hunt_digest(result), 0x1afc49f41586d6d2ULL)
      << std::hex << hunt_digest(result);
}

TEST(Hunt, BanditStrategyIsDeterministicAndFindsABest) {
  const HuntSpec spec =
      tiny_spec(FitnessKind::kOutcome, StrategyKind::kBandit);
  const HuntResult a = run_hunt(spec);
  const HuntResult b = run_hunt(spec);
  EXPECT_EQ(hunt_digest(a), hunt_digest(b));
  ASSERT_TRUE(a.best.has_value());
  EXPECT_GE(a.evaluations, spec.budget / 2);
}

TEST(Hunt, ValidatorRejectsBadSpecs) {
  HuntSpec spec = tiny_spec();
  spec.budget = 0;
  EXPECT_FALSE(validate_hunt_spec(spec).empty());
  spec = tiny_spec();
  spec.epsilon = 1.5;
  EXPECT_FALSE(validate_hunt_spec(spec).empty());
  spec = tiny_spec();
  spec.keep_fraction = 0.0;
  EXPECT_FALSE(validate_hunt_spec(spec).empty());
  spec = tiny_spec();
  spec.bounds.n_min = 12;
  spec.bounds.n_max = 8;
  EXPECT_FALSE(validate_hunt_spec(spec).empty());
  spec = tiny_spec();
  spec.algorithm = "no-such-algorithm";
  EXPECT_FALSE(validate_hunt_spec(spec).empty());
  EXPECT_TRUE(validate_hunt_spec(tiny_spec()).empty());
}

// ---------------------------------------------------------------------------
// Minimizer.

TEST(Minimize, PreservesTheOutcomeClassAndTheScoreFloor) {
  const HuntSpec spec = tiny_spec(FitnessKind::kOutcome);
  const HuntResult result = run_hunt(spec);
  ASSERT_TRUE(result.best.has_value());
  ASSERT_TRUE(result.minimized.has_value());
  EXPECT_EQ(outcome_rank(result.minimized->metrics.outcome),
            outcome_rank(result.best->metrics.outcome));
  // keep_fraction defaults to 1: a shrink step is only accepted when it
  // keeps the full score.
  EXPECT_GE(result.minimized->score, result.best->score);
  // The minimized plan is never larger than the winner.
  EXPECT_LE(result.minimized->plan.n, result.best->plan.n);
}

TEST(Minimize, IsDeterministic) {
  const HuntSpec spec = tiny_spec(FitnessKind::kMinSeparation);
  const HuntResult a = run_hunt(spec);
  const HuntResult b = run_hunt(spec);
  ASSERT_TRUE(a.minimized.has_value());
  ASSERT_TRUE(b.minimized.has_value());
  EXPECT_EQ(a.minimized->plan, b.minimized->plan);
  EXPECT_EQ(a.minimize_evals, b.minimize_evals);
  EXPECT_EQ(a.minimize_accepted, b.minimize_accepted);
}

// ---------------------------------------------------------------------------
// Regression-scenario round-trip and replay.

TEST(ScenarioIO, MinimizedWinnerRoundTripsAndReplaysExactly) {
  const HuntSpec spec = tiny_spec();
  const HuntResult result = run_hunt(spec);
  ASSERT_TRUE(result.minimized.has_value());
  const AdversarialScenario scenario =
      make_regression_scenario(spec, *result.minimized, "unit test");
  const std::string text = adversarial_scenario_to_json(scenario);
  const auto parsed = adversarial_scenario_from_json(text);
  ASSERT_TRUE(parsed.scenario.has_value()) << parsed.error;
  EXPECT_EQ(adversarial_scenario_to_json(*parsed.scenario), text);

  // A replayed scenario reproduces its hunt evaluation bit-for-bit: the
  // oracle and the replay are the same hunt_scenario projection.
  const ReplayVerdict verdict = replay_adversarial_scenario(*parsed.scenario);
  EXPECT_TRUE(verdict.passed()) << verdict.detail;
  EXPECT_EQ(verdict.score, result.minimized->score);
}

TEST(ScenarioIO, RejectsUnknownKeysAndWrongType) {
  EXPECT_FALSE(
      adversarial_scenario_from_json(R"({"type": "wrong"})").scenario
          .has_value());
  const HuntSpec spec = tiny_spec();
  Evaluation fake;
  fake.plan = spec.seed_plan;
  const std::string text =
      adversarial_scenario_to_json(make_regression_scenario(spec, fake));
  const std::string corrupted =
      text.substr(0, text.size() - 2) + ",\n  \"extra\": 1\n}";
  const auto parsed = adversarial_scenario_from_json(corrupted);
  EXPECT_FALSE(parsed.scenario.has_value());
  EXPECT_NE(parsed.error.find("extra"), std::string::npos) << parsed.error;
}

// ---------------------------------------------------------------------------
// E13 registration.

TEST(Experiment, ExternalRegistrationIsIdempotent) {
  register_hunt_experiment();
  const std::size_t count =
      analysis::ExperimentRegistry::instance().experiments().size();
  register_hunt_experiment();
  EXPECT_EQ(analysis::ExperimentRegistry::instance().experiments().size(),
            count);
  const auto* by_id = analysis::ExperimentRegistry::instance().find("E13");
  const auto* by_name =
      analysis::ExperimentRegistry::instance().find("adversarial-hunt");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id, by_name);
}

TEST(Experiment, TinySpecProducesOneRowPerFitness) {
  register_hunt_experiment();
  const auto* e = analysis::ExperimentRegistry::instance().find("E13");
  ASSERT_NE(e, nullptr);
  analysis::ScenarioSpec spec = e->defaults;
  spec.ns = {8};
  spec.runs = 2;
  spec.run.max_cycles_per_robot = 96;
  analysis::ExperimentContext ctx;
  const auto result = e->run(spec, ctx);
  EXPECT_EQ(result.rows.size(), all_fitness_kinds().size());
  EXPECT_EQ(result.columns.size(), 8u);
  // Only the structural claim is budget-independent; whether a toy-budget
  // hunt beats the uniform tail is a property of the full-size run (the
  // committed E13 tables), not of this smoke-scale shape test.
  for (const auto& check : result.checks) {
    if (check.label.find("found and minimized") != std::string::npos) {
      EXPECT_TRUE(check.passed) << check.label;
    }
  }
}

}  // namespace
}  // namespace lumen::search
