// Trace export/replay tests: exact round-trip, malformed-input rejection,
// and re-auditing a loaded trace with the collision monitor.
#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/registry.hpp"
#include "gen/generators.hpp"
#include "sim/monitors.hpp"

namespace lumen::sim {
namespace {

RunResult example_run(std::uint64_t seed = 11) {
  const auto algo = core::make_algorithm("async-log");
  const auto initial = gen::generate(gen::ConfigFamily::kUniformDisk, 16, seed);
  RunConfig config;
  config.seed = seed;
  return run_simulation(*algo, initial, config);
}

TEST(TraceIo, ExactRoundTripThroughStream) {
  const auto run = example_run();
  const Trace original = make_trace(run);
  std::stringstream ss;
  write_trace(ss, original);
  const auto loaded = read_trace(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(traces_equal(original, *loaded));
}

TEST(TraceIo, FileRoundTrip) {
  const auto run = example_run();
  const std::string path = ::testing::TempDir() + "/lumen_trace_test.jsonl";
  ASSERT_TRUE(save_trace(run, path));
  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(traces_equal(make_trace(run), *loaded));
  EXPECT_FALSE(save_trace(run, "/nonexistent-dir-xyz/trace.jsonl"));
  EXPECT_FALSE(load_trace("/nonexistent-dir-xyz/trace.jsonl").has_value());
}

TEST(TraceIo, LoadedTracePassesTheSameAudit) {
  const auto run = example_run();
  const auto direct =
      check_collisions(run.initial_positions, run.moves, run.final_time);
  std::stringstream ss;
  write_trace(ss, make_trace(run));
  const auto loaded = read_trace(ss);
  ASSERT_TRUE(loaded.has_value());
  const auto replayed = check_collisions(loaded->initial_positions,
                                         loaded->moves, loaded->final_time);
  EXPECT_EQ(direct.position_collisions, replayed.position_collisions);
  EXPECT_EQ(direct.path_crossings, replayed.path_crossings);
  EXPECT_EQ(direct.min_separation, replayed.min_separation);
}

TEST(TraceIo, SameSeedReproducesIdenticalTrace) {
  const Trace a = make_trace(example_run(21));
  const Trace b = make_trace(example_run(21));
  const Trace c = make_trace(example_run(22));
  EXPECT_TRUE(traces_equal(a, b));
  EXPECT_FALSE(traces_equal(a, c));
}

TEST(TraceIo, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_FALSE(read_trace(ss).has_value()) << text;
  };
  reject("");
  reject("garbage\n");
  reject("{\"type\":\"other\",\"version\":1}\n");
  // Header promising more robots than lines present.
  reject("{\"type\":\"lumen-trace\",\"version\":1,\"robots\":3,\"converged\":true"
         ",\"final_time\":1,\"epochs\":1,\"moves\":0}\n"
         "{\"init\":[0,0]}\n");
  // Move referencing an out-of-range robot.
  reject("{\"type\":\"lumen-trace\",\"version\":1,\"robots\":1,\"converged\":true"
         ",\"final_time\":1,\"epochs\":1,\"moves\":1}\n"
         "{\"init\":[0,0]}\n"
         "{\"robot\":5,\"t\":[0,1],\"from\":[0,0],\"to\":[1,1]}\n");
  // Absurd counts.
  reject("{\"type\":\"lumen-trace\",\"version\":1,\"robots\":99999999999,"
         "\"converged\":true,\"final_time\":1,\"epochs\":1,\"moves\":0}\n");
}

TEST(TraceIo, EmptyRunSerializes) {
  RunResult empty;
  empty.converged = true;
  std::stringstream ss;
  write_trace(ss, make_trace(empty));
  const auto loaded = read_trace(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->robot_count, 0u);
  EXPECT_TRUE(loaded->converged);
}

}  // namespace
}  // namespace lumen::sim
