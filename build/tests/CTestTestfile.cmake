# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_prng_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_table_test[1]_include.cmake")
include("/root/repo/build/tests/util_cli_test[1]_include.cmake")
include("/root/repo/build/tests/util_thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/geom_vec2_test[1]_include.cmake")
include("/root/repo/build/tests/geom_predicates_test[1]_include.cmake")
include("/root/repo/build/tests/geom_segment_test[1]_include.cmake")
include("/root/repo/build/tests/geom_hull_test[1]_include.cmake")
include("/root/repo/build/tests/geom_polygon_test[1]_include.cmake")
include("/root/repo/build/tests/geom_circle_test[1]_include.cmake")
include("/root/repo/build/tests/geom_visibility_test[1]_include.cmake")
include("/root/repo/build/tests/geom_extremal_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trajectory_test[1]_include.cmake")
include("/root/repo/build/tests/sim_monitors_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_svg_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/core_view_test[1]_include.cmake")
include("/root/repo/build/tests/core_beacon_test[1]_include.cmake")
include("/root/repo/build/tests/core_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/property_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
