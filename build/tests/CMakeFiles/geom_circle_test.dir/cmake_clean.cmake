file(REMOVE_RECURSE
  "CMakeFiles/geom_circle_test.dir/geom_circle_test.cpp.o"
  "CMakeFiles/geom_circle_test.dir/geom_circle_test.cpp.o.d"
  "geom_circle_test"
  "geom_circle_test.pdb"
  "geom_circle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_circle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
