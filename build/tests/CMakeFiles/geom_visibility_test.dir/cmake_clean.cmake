file(REMOVE_RECURSE
  "CMakeFiles/geom_visibility_test.dir/geom_visibility_test.cpp.o"
  "CMakeFiles/geom_visibility_test.dir/geom_visibility_test.cpp.o.d"
  "geom_visibility_test"
  "geom_visibility_test.pdb"
  "geom_visibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_visibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
