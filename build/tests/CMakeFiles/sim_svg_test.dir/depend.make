# Empty dependencies file for sim_svg_test.
# This may be replaced when dependencies are built.
