file(REMOVE_RECURSE
  "CMakeFiles/sim_svg_test.dir/sim_svg_test.cpp.o"
  "CMakeFiles/sim_svg_test.dir/sim_svg_test.cpp.o.d"
  "sim_svg_test"
  "sim_svg_test.pdb"
  "sim_svg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_svg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
