file(REMOVE_RECURSE
  "CMakeFiles/geom_hull_test.dir/geom_hull_test.cpp.o"
  "CMakeFiles/geom_hull_test.dir/geom_hull_test.cpp.o.d"
  "geom_hull_test"
  "geom_hull_test.pdb"
  "geom_hull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
