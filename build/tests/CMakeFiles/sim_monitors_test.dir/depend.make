# Empty dependencies file for sim_monitors_test.
# This may be replaced when dependencies are built.
