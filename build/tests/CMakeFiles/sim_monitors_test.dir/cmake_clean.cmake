file(REMOVE_RECURSE
  "CMakeFiles/sim_monitors_test.dir/sim_monitors_test.cpp.o"
  "CMakeFiles/sim_monitors_test.dir/sim_monitors_test.cpp.o.d"
  "sim_monitors_test"
  "sim_monitors_test.pdb"
  "sim_monitors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_monitors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
