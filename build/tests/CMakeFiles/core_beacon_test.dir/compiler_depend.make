# Empty compiler generated dependencies file for core_beacon_test.
# This may be replaced when dependencies are built.
