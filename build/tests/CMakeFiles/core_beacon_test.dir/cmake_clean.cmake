file(REMOVE_RECURSE
  "CMakeFiles/core_beacon_test.dir/core_beacon_test.cpp.o"
  "CMakeFiles/core_beacon_test.dir/core_beacon_test.cpp.o.d"
  "core_beacon_test"
  "core_beacon_test.pdb"
  "core_beacon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_beacon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
