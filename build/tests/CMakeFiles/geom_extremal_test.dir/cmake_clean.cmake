file(REMOVE_RECURSE
  "CMakeFiles/geom_extremal_test.dir/geom_extremal_test.cpp.o"
  "CMakeFiles/geom_extremal_test.dir/geom_extremal_test.cpp.o.d"
  "geom_extremal_test"
  "geom_extremal_test.pdb"
  "geom_extremal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_extremal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
