# Empty dependencies file for collinear_rescue.
# This may be replaced when dependencies are built.
