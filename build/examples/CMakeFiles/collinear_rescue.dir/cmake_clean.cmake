file(REMOVE_RECURSE
  "CMakeFiles/collinear_rescue.dir/collinear_rescue.cpp.o"
  "CMakeFiles/collinear_rescue.dir/collinear_rescue.cpp.o.d"
  "collinear_rescue"
  "collinear_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collinear_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
