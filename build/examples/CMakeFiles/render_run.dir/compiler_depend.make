# Empty compiler generated dependencies file for render_run.
# This may be replaced when dependencies are built.
