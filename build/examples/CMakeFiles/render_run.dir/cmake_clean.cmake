file(REMOVE_RECURSE
  "CMakeFiles/render_run.dir/render_run.cpp.o"
  "CMakeFiles/render_run.dir/render_run.cpp.o.d"
  "render_run"
  "render_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
