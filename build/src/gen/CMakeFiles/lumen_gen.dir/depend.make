# Empty dependencies file for lumen_gen.
# This may be replaced when dependencies are built.
