file(REMOVE_RECURSE
  "liblumen_gen.a"
)
