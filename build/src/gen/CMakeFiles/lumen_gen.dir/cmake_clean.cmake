file(REMOVE_RECURSE
  "CMakeFiles/lumen_gen.dir/generators.cpp.o"
  "CMakeFiles/lumen_gen.dir/generators.cpp.o.d"
  "liblumen_gen.a"
  "liblumen_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
