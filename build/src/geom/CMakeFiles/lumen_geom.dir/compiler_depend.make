# Empty compiler generated dependencies file for lumen_geom.
# This may be replaced when dependencies are built.
