
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/circle.cpp" "src/geom/CMakeFiles/lumen_geom.dir/circle.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/circle.cpp.o.d"
  "/root/repo/src/geom/extremal.cpp" "src/geom/CMakeFiles/lumen_geom.dir/extremal.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/extremal.cpp.o.d"
  "/root/repo/src/geom/hull.cpp" "src/geom/CMakeFiles/lumen_geom.dir/hull.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/hull.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/lumen_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/predicates.cpp" "src/geom/CMakeFiles/lumen_geom.dir/predicates.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/predicates.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/geom/CMakeFiles/lumen_geom.dir/segment.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/segment.cpp.o.d"
  "/root/repo/src/geom/visibility.cpp" "src/geom/CMakeFiles/lumen_geom.dir/visibility.cpp.o" "gcc" "src/geom/CMakeFiles/lumen_geom.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
