file(REMOVE_RECURSE
  "liblumen_geom.a"
)
