file(REMOVE_RECURSE
  "CMakeFiles/lumen_geom.dir/circle.cpp.o"
  "CMakeFiles/lumen_geom.dir/circle.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/extremal.cpp.o"
  "CMakeFiles/lumen_geom.dir/extremal.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/hull.cpp.o"
  "CMakeFiles/lumen_geom.dir/hull.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/polygon.cpp.o"
  "CMakeFiles/lumen_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/predicates.cpp.o"
  "CMakeFiles/lumen_geom.dir/predicates.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/segment.cpp.o"
  "CMakeFiles/lumen_geom.dir/segment.cpp.o.d"
  "CMakeFiles/lumen_geom.dir/visibility.cpp.o"
  "CMakeFiles/lumen_geom.dir/visibility.cpp.o.d"
  "liblumen_geom.a"
  "liblumen_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
