file(REMOVE_RECURSE
  "CMakeFiles/lumen_analysis.dir/campaign.cpp.o"
  "CMakeFiles/lumen_analysis.dir/campaign.cpp.o.d"
  "liblumen_analysis.a"
  "liblumen_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
