# Empty compiler generated dependencies file for lumen_analysis.
# This may be replaced when dependencies are built.
