file(REMOVE_RECURSE
  "liblumen_analysis.a"
)
