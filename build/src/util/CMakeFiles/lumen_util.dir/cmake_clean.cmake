file(REMOVE_RECURSE
  "CMakeFiles/lumen_util.dir/cli.cpp.o"
  "CMakeFiles/lumen_util.dir/cli.cpp.o.d"
  "CMakeFiles/lumen_util.dir/log.cpp.o"
  "CMakeFiles/lumen_util.dir/log.cpp.o.d"
  "CMakeFiles/lumen_util.dir/prng.cpp.o"
  "CMakeFiles/lumen_util.dir/prng.cpp.o.d"
  "CMakeFiles/lumen_util.dir/stats.cpp.o"
  "CMakeFiles/lumen_util.dir/stats.cpp.o.d"
  "CMakeFiles/lumen_util.dir/table.cpp.o"
  "CMakeFiles/lumen_util.dir/table.cpp.o.d"
  "CMakeFiles/lumen_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lumen_util.dir/thread_pool.cpp.o.d"
  "liblumen_util.a"
  "liblumen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
