# Empty dependencies file for lumen_sched.
# This may be replaced when dependencies are built.
