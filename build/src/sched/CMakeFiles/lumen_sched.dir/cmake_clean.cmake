file(REMOVE_RECURSE
  "CMakeFiles/lumen_sched.dir/activation.cpp.o"
  "CMakeFiles/lumen_sched.dir/activation.cpp.o.d"
  "CMakeFiles/lumen_sched.dir/adversary.cpp.o"
  "CMakeFiles/lumen_sched.dir/adversary.cpp.o.d"
  "CMakeFiles/lumen_sched.dir/epoch.cpp.o"
  "CMakeFiles/lumen_sched.dir/epoch.cpp.o.d"
  "liblumen_sched.a"
  "liblumen_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
