file(REMOVE_RECURSE
  "liblumen_sched.a"
)
