
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/activation.cpp" "src/sched/CMakeFiles/lumen_sched.dir/activation.cpp.o" "gcc" "src/sched/CMakeFiles/lumen_sched.dir/activation.cpp.o.d"
  "/root/repo/src/sched/adversary.cpp" "src/sched/CMakeFiles/lumen_sched.dir/adversary.cpp.o" "gcc" "src/sched/CMakeFiles/lumen_sched.dir/adversary.cpp.o.d"
  "/root/repo/src/sched/epoch.cpp" "src/sched/CMakeFiles/lumen_sched.dir/epoch.cpp.o" "gcc" "src/sched/CMakeFiles/lumen_sched.dir/epoch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
