file(REMOVE_RECURSE
  "CMakeFiles/lumen_core.dir/baseline_sequential.cpp.o"
  "CMakeFiles/lumen_core.dir/baseline_sequential.cpp.o.d"
  "CMakeFiles/lumen_core.dir/beacon.cpp.o"
  "CMakeFiles/lumen_core.dir/beacon.cpp.o.d"
  "CMakeFiles/lumen_core.dir/cv_async.cpp.o"
  "CMakeFiles/lumen_core.dir/cv_async.cpp.o.d"
  "CMakeFiles/lumen_core.dir/registry.cpp.o"
  "CMakeFiles/lumen_core.dir/registry.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ssync_parallel.cpp.o"
  "CMakeFiles/lumen_core.dir/ssync_parallel.cpp.o.d"
  "CMakeFiles/lumen_core.dir/view.cpp.o"
  "CMakeFiles/lumen_core.dir/view.cpp.o.d"
  "liblumen_core.a"
  "liblumen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
