
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_sequential.cpp" "src/core/CMakeFiles/lumen_core.dir/baseline_sequential.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/baseline_sequential.cpp.o.d"
  "/root/repo/src/core/beacon.cpp" "src/core/CMakeFiles/lumen_core.dir/beacon.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/beacon.cpp.o.d"
  "/root/repo/src/core/cv_async.cpp" "src/core/CMakeFiles/lumen_core.dir/cv_async.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/cv_async.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/lumen_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/ssync_parallel.cpp" "src/core/CMakeFiles/lumen_core.dir/ssync_parallel.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ssync_parallel.cpp.o.d"
  "/root/repo/src/core/view.cpp" "src/core/CMakeFiles/lumen_core.dir/view.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/lumen_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lumen_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
