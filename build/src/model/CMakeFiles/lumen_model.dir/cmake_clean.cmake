file(REMOVE_RECURSE
  "CMakeFiles/lumen_model.dir/frame.cpp.o"
  "CMakeFiles/lumen_model.dir/frame.cpp.o.d"
  "CMakeFiles/lumen_model.dir/snapshot.cpp.o"
  "CMakeFiles/lumen_model.dir/snapshot.cpp.o.d"
  "liblumen_model.a"
  "liblumen_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
