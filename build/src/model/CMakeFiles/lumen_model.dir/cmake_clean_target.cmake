file(REMOVE_RECURSE
  "liblumen_model.a"
)
