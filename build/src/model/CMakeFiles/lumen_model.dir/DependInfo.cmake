
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/frame.cpp" "src/model/CMakeFiles/lumen_model.dir/frame.cpp.o" "gcc" "src/model/CMakeFiles/lumen_model.dir/frame.cpp.o.d"
  "/root/repo/src/model/snapshot.cpp" "src/model/CMakeFiles/lumen_model.dir/snapshot.cpp.o" "gcc" "src/model/CMakeFiles/lumen_model.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/lumen_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
