# Empty compiler generated dependencies file for lumen_model.
# This may be replaced when dependencies are built.
