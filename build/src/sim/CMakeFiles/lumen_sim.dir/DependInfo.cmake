
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/lumen_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/lumen_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/monitors.cpp" "src/sim/CMakeFiles/lumen_sim.dir/monitors.cpp.o" "gcc" "src/sim/CMakeFiles/lumen_sim.dir/monitors.cpp.o.d"
  "/root/repo/src/sim/svg.cpp" "src/sim/CMakeFiles/lumen_sim.dir/svg.cpp.o" "gcc" "src/sim/CMakeFiles/lumen_sim.dir/svg.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/lumen_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/lumen_sim.dir/trace_io.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/lumen_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/lumen_sim.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/lumen_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lumen_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/lumen_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
