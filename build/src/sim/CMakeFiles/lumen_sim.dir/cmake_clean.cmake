file(REMOVE_RECURSE
  "CMakeFiles/lumen_sim.dir/engine.cpp.o"
  "CMakeFiles/lumen_sim.dir/engine.cpp.o.d"
  "CMakeFiles/lumen_sim.dir/monitors.cpp.o"
  "CMakeFiles/lumen_sim.dir/monitors.cpp.o.d"
  "CMakeFiles/lumen_sim.dir/svg.cpp.o"
  "CMakeFiles/lumen_sim.dir/svg.cpp.o.d"
  "CMakeFiles/lumen_sim.dir/trace_io.cpp.o"
  "CMakeFiles/lumen_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/lumen_sim.dir/trajectory.cpp.o"
  "CMakeFiles/lumen_sim.dir/trajectory.cpp.o.d"
  "liblumen_sim.a"
  "liblumen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
