file(REMOVE_RECURSE
  "liblumen_sim.a"
)
