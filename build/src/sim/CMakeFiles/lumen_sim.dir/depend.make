# Empty dependencies file for lumen_sim.
# This may be replaced when dependencies are built.
