file(REMOVE_RECURSE
  "CMakeFiles/bench_time_vs_n.dir/bench_time_vs_n.cpp.o"
  "CMakeFiles/bench_time_vs_n.dir/bench_time_vs_n.cpp.o.d"
  "bench_time_vs_n"
  "bench_time_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
