# Empty dependencies file for bench_doubling.
# This may be replaced when dependencies are built.
